package dist

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
)

const testFeatureDim = 600 // above colTrackThreshold: first layer tracks columns

// multiThreadMode returns the update mode for tests that train with
// multiple worker threads per replica: HOGWILD's races (including the
// benign touched/colStamp stamps) are deliberate and would trip the race
// detector, so -race runs use the sharded-writer batch-sync discipline —
// the same convention internal/core's race-gated tests follow.
func multiThreadMode() optim.UpdateMode {
	if raceEnabled {
		return optim.ModeBatchSync
	}
	return optim.ModeHogwild
}

func distDataset(t testing.TB, classes, trainSize int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Profile{
		Name:        "dist-test",
		FeatureDim:  testFeatureDim,
		NumClasses:  classes,
		TrainSize:   trainSize,
		TestSize:    trainSize / 4,
		AvgFeatures: 20,
		AvgLabels:   2,
		ProtoNNZ:    12,
		NoiseFrac:   0.1,
		LabelSkew:   1.5,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func distConfig(classes int, mode optim.UpdateMode) core.Config {
	return core.Config{
		InputDim:   testFeatureDim,
		Seed:       11,
		UpdateMode: mode,
		Layers: []core.LayerConfig{
			{Size: 64, Activation: core.ActReLU},
			{
				Size: classes, Activation: core.ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 5, L: 16,
				Strategy: sampling.KindTopK, Beta: 48,
			},
		},
	}
}

// requireNetsBitIdentical compares two networks' weights and biases bit
// for bit through the public layer accessors.
func requireNetsBitIdentical(t *testing.T, a, b *core.Network, context string) {
	t.Helper()
	if a.NumLayers() != b.NumLayers() {
		t.Fatalf("%s: layer counts differ", context)
	}
	for li := 0; li < a.NumLayers(); li++ {
		la, lb := a.Layer(li), b.Layer(li)
		for j := 0; j < la.Out(); j++ {
			wa, wb := la.Weights(j), lb.Weights(j)
			for i := range wa {
				if math.Float32bits(wa[i]) != math.Float32bits(wb[i]) {
					t.Fatalf("%s: layer %d w[%d][%d]: %g != %g", context, li, j, i, wa[i], wb[i])
				}
			}
			if math.Float32bits(la.Bias(j)) != math.Float32bits(lb.Bias(j)) {
				t.Fatalf("%s: layer %d bias[%d]: %g != %g", context, li, j, la.Bias(j), lb.Bias(j))
			}
		}
	}
}

// TestShardExamples: round-robin partition covers every example exactly
// once and balances sizes within one.
func TestShardExamples(t *testing.T) {
	ds := distDataset(t, 64, 103)
	seen := make(map[int]int)
	sizes := make([]int, 3)
	for r := 0; r < 3; r++ {
		shard := ShardExamples(ds.Train, r, 3)
		sizes[r] = len(shard)
		for i := r; i < len(ds.Train); i += 3 {
			seen[i]++
		}
	}
	if len(seen) != len(ds.Train) {
		t.Fatalf("shards cover %d of %d examples", len(seen), len(ds.Train))
	}
	if sizes[0]+sizes[1]+sizes[2] != len(ds.Train) {
		t.Fatalf("shard sizes %v do not sum to %d", sizes, len(ds.Train))
	}
	if sizes[0]-sizes[2] > 1 {
		t.Fatalf("shard sizes %v unbalanced", sizes)
	}
	if got := ShardExamples(ds.Train, 0, 1); len(got) != len(ds.Train) {
		t.Fatalf("1-shard split returned %d examples", len(got))
	}
}

// TestMeshAllReduce: N ranks exchanging concurrently all receive the same
// merged delta — the rank-ordered cell-wise sum — with stop propagation
// and byte accounting.
func TestMeshAllReduce(t *testing.T) {
	dims := [][2]int32{{32, 64}}
	codec := testCodec(dims...)
	const shards = 3
	mesh := NewMesh(shards, codec)
	locals := make([]*core.SparseDelta, shards)
	for i := range locals {
		locals[i] = randomDelta(rand.New(rand.NewSource(int64(i)+20)), dims)
	}

	const rounds = 5
	type got struct {
		merged  [rounds]uint64 // fnv of encoded merged per round
		stopAll [rounds]bool
	}
	results := make([]got, shards)
	var wg sync.WaitGroup
	for rank := 0; rank < shards; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ex := mesh.Rank(rank)
			for round := 0; round < rounds; round++ {
				stop := round == rounds-1 && rank == 1 // one rank requests a stop last round
				merged, stopAll, err := ex.Exchange(int64(round), locals[rank], stop)
				if err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				buf, err := codec.AppendDelta(nil, merged)
				if err != nil {
					t.Errorf("rank %d round %d: encode merged: %v", rank, round, err)
					return
				}
				h := fnv.New64a()
				h.Write(buf)
				results[rank].merged[round] = h.Sum64()
				results[rank].stopAll[round] = stopAll
			}
		}(rank)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for rank := 1; rank < shards; rank++ {
		for round := 0; round < rounds; round++ {
			if results[rank].merged[round] != results[0].merged[round] {
				t.Fatalf("rank %d round %d merged differs from rank 0", rank, round)
			}
			if results[rank].stopAll[round] != (round == rounds-1) {
				t.Fatalf("rank %d round %d stopAll = %v", rank, round, results[rank].stopAll[round])
			}
		}
	}

	// A 1-shard mesh passes the local delta straight through.
	mesh2 := NewMesh(1, codec)
	solo, _, err := mesh2.Rank(0).Exchange(0, locals[0], false)
	if err != nil || solo != locals[0] {
		t.Fatalf("1-shard mesh must pass the local delta through, got %p (%v)", solo, err)
	}

	for rank, st := range mesh.Stats() {
		if st.Rounds != rounds {
			t.Fatalf("rank %d rounds = %d, want %d", rank, st.Rounds, rounds)
		}
		wantOut := int64(rounds * codec.EncodedSize(locals[rank]))
		if st.BytesOut != wantOut {
			t.Fatalf("rank %d BytesOut = %d, want %d", rank, st.BytesOut, wantOut)
		}
		if st.BytesIn <= 0 {
			t.Fatalf("rank %d BytesIn = %d", rank, st.BytesIn)
		}
	}
}

// TestMeshFailUnblocks: poisoning the mesh releases a rank blocked on the
// barrier with the failure error.
func TestMeshFailUnblocks(t *testing.T) {
	dims := [][2]int32{{8, 8}}
	mesh := NewMesh(2, testCodec(dims...))
	local := randomDelta(rand.New(rand.NewSource(1)), dims)
	errc := make(chan error, 1)
	go func() {
		_, _, err := mesh.Rank(0).Exchange(0, local, false)
		errc <- err
	}()
	boom := errors.New("replica died")
	mesh.Fail(boom)
	if err := <-errc; !errors.Is(err, boom) {
		t.Fatalf("blocked rank returned %v, want %v", err, boom)
	}
	if _, _, err := mesh.Rank(1).Exchange(0, local, false); !errors.Is(err, boom) {
		t.Fatalf("later exchange returned %v, want %v", err, boom)
	}
}

// TestTrainShardedLoopbackMatchesPlain: the shards=1 configuration is a
// pure measurement tap — training is bit-identical to net.Train while
// every batch's encoded payload is priced.
func TestTrainShardedLoopbackMatchesPlain(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	cfg := distConfig(classes, optim.ModeBatchSync)
	tc := core.TrainConfig{BatchSize: 32, Iterations: 15, Threads: 1, EvalEvery: 0, Seed: 9}

	plain, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Train(ds.Train, ds.Test, tc); err != nil {
		t.Fatal(err)
	}
	res, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireNetsBitIdentical(t, plain, res.Nets[0], "loopback vs plain")
	st := res.Stats[0]
	if st.Rounds != 15 || st.BytesOut == 0 || st.BytesOut != st.BytesIn {
		t.Fatalf("loopback stats = %+v", st)
	}
	if res.Results[0].TouchedPerIter <= 0 {
		t.Fatal("TouchedPerIter not accounted")
	}
	// The measured codec payload must undercut the historical 8 B/cell
	// index+value estimate.
	estimate := res.Results[0].TouchedPerIter * 8
	if measured := st.BytesOutPerRound(); measured > estimate {
		t.Fatalf("measured %0.f B/iter above the 8 B/cell estimate %0.f", measured, estimate)
	}
}

// TestTrainShardedReplicasInLockstep is the data-parallel core guarantee:
// every replica applies the same merged delta, so after any number of
// batches all replicas hold bit-identical weights.
func TestTrainShardedReplicasInLockstep(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	cfg := distConfig(classes, multiThreadMode())
	tc := core.TrainConfig{BatchSize: 16, Iterations: 25, Threads: 2, EvalEvery: 10, Seed: 3}

	res, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireNetsBitIdentical(t, res.Nets[0], res.Nets[1], "replica 0 vs 1")
	requireNetsBitIdentical(t, res.Nets[0], res.Nets[2], "replica 0 vs 2")
	for rank, st := range res.Stats {
		if st.Rounds != 25 {
			t.Fatalf("rank %d exchanged %d rounds, want 25", rank, st.Rounds)
		}
	}
	for rank, r := range res.Results {
		if r.Iterations != 25 {
			t.Fatalf("rank %d ran %d iterations, want 25", rank, r.Iterations)
		}
	}
}

// TestTrainShardedLockstepCompressed sweeps the compression × overlap
// matrix through 3-shard in-process training: whatever rides the wire —
// bf16-rounded values, top-k selections with per-rank error feedback —
// and however the exchange is scheduled, every replica must end with
// bit-identical weights (the merged delta each rank applies is shared).
func TestTrainShardedLockstepCompressed(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	variants := []struct {
		name   string
		mutate func(*core.TrainConfig)
	}{
		{"fp32-overlap", func(tc *core.TrainConfig) { tc.OverlapExchange = true }},
		{"bf16", func(tc *core.TrainConfig) { tc.Compress = core.CompressBF16 }},
		{"bf16-overlap", func(tc *core.TrainConfig) {
			tc.Compress = core.CompressBF16
			tc.OverlapExchange = true
		}},
		{"topk", func(tc *core.TrainConfig) {
			tc.Compress = core.CompressTopK
			tc.TopKFrac = 0.25
		}},
		{"topk-overlap", func(tc *core.TrainConfig) {
			tc.Compress = core.CompressTopK
			tc.TopKFrac = 0.25
			tc.OverlapExchange = true
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := distConfig(classes, multiThreadMode())
			tc := core.TrainConfig{BatchSize: 16, Iterations: 20, Threads: 2, EvalEvery: 8, Seed: 3}
			v.mutate(&tc)
			res, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 3)
			if err != nil {
				t.Fatal(err)
			}
			requireNetsBitIdentical(t, res.Nets[0], res.Nets[1], "replica 0 vs 1")
			requireNetsBitIdentical(t, res.Nets[0], res.Nets[2], "replica 0 vs 2")
			for rank, st := range res.Stats {
				if st.Rounds != 20 {
					t.Fatalf("rank %d exchanged %d rounds, want 20", rank, st.Rounds)
				}
			}
			if tc.OverlapExchange {
				r0 := res.Results[0]
				if r0.ExchangeNS < 0 || r0.ExchangeHiddenNS < 0 {
					t.Fatalf("negative exchange split: blocked %d hidden %d", r0.ExchangeNS, r0.ExchangeHiddenNS)
				}
			}
		})
	}
}

// TestCompressionShrinksMeasuredBytes: on a real training workload the
// bf16 wire format must ship fewer measured bytes than fp32, and topk at
// a small fraction must undercut both by a large factor (the ≥4x §6
// operating-point target lives in the benchmark; here we pin direction
// and a conservative 2x for a short run).
func TestCompressionShrinksMeasuredBytes(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	perIter := func(mutate func(*core.TrainConfig)) float64 {
		cfg := distConfig(classes, optim.ModeBatchSync)
		tc := core.TrainConfig{BatchSize: 32, Iterations: 12, Threads: 1, EvalEvery: 0, Seed: 9}
		if mutate != nil {
			mutate(&tc)
		}
		res, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats[0].BytesOutPerRound()
	}
	fp32 := perIter(nil)
	bf16 := perIter(func(tc *core.TrainConfig) { tc.Compress = core.CompressBF16 })
	topk := perIter(func(tc *core.TrainConfig) {
		tc.Compress = core.CompressTopK
		tc.TopKFrac = 0.1
	})
	t.Logf("measured bytes/iter: fp32 %.0f, bf16 %.0f, topk:0.1 %.0f", fp32, bf16, topk)
	if bf16 >= fp32 {
		t.Fatalf("bf16 %.0f B/iter does not undercut fp32 %.0f", bf16, fp32)
	}
	if topk >= fp32/2 {
		t.Fatalf("topk:0.1 %.0f B/iter is not ≥2x below fp32 %.0f", topk, fp32)
	}
}

// TestTrainShardedCoordinatedStop: a TargetAcc stop on one replica (their
// eval subsets differ, so one replica can cross the target alone) halts
// every replica at the same step via the exchanged stop flag.
func TestTrainShardedCoordinatedStop(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	cfg := distConfig(classes, optim.ModeHogwild)
	// TargetAcc 0 is "never"; an absurdly low positive target trips at
	// the first eval on whichever replica evaluates first.
	tc := core.TrainConfig{
		BatchSize: 16, Iterations: 200, Threads: 1, EvalEvery: 5,
		TargetAcc: 1e-9, Seed: 3,
	}
	res, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 2)
	if err != nil {
		t.Fatal(err)
	}
	it0, it1 := res.Results[0].Iterations, res.Results[1].Iterations
	if it0 != it1 {
		t.Fatalf("replicas stopped at different steps: %d vs %d", it0, it1)
	}
	if it0 >= 200 {
		t.Fatalf("coordinated stop never fired (%d iterations)", it0)
	}
	requireNetsBitIdentical(t, res.Nets[0], res.Nets[1], "after coordinated stop")
}

// TestTrainShardedCancellation: context cancellation is coordinated like
// any other stop — all replicas drain within one extra batch and report
// the cancellation.
func TestTrainShardedCancellation(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	cfg := distConfig(classes, optim.ModeHogwild)
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	tc := core.TrainConfig{
		BatchSize: 16, Iterations: 10000, Threads: 1, EvalEvery: 3, Seed: 3,
		OnEval: func(core.Point) {
			if evals++; evals == 2 {
				cancel()
			}
		},
	}
	res, err := TrainSharded(ctx, cfg, ds.Train, ds.Test, tc, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Results[0] == nil || res.Results[1] == nil {
		t.Fatal("cancelled run must still return partial results")
	}
	if it := res.Results[0].Iterations; it >= 10000 || it == 0 {
		t.Fatalf("rank 0 ran %d iterations", it)
	}
	if res.Results[0].Iterations != res.Results[1].Iterations {
		t.Fatalf("replicas drained at different steps: %d vs %d",
			res.Results[0].Iterations, res.Results[1].Iterations)
	}
	requireNetsBitIdentical(t, res.Nets[0], res.Nets[1], "after cancellation")
}

// trainWithExchanger drives one replica exactly as TrainSharded does,
// against an arbitrary exchanger — used to run the TCP transport through
// real training.
func trainWithExchanger(t *testing.T, net *core.Network, ex core.DeltaExchanger,
	shard, test []dataset.Example, rank, shards int, iters int64, mutate func(*core.TrainConfig)) *core.TrainResult {
	t.Helper()
	tc := core.TrainConfig{
		BatchSize: 16, Iterations: iters, Threads: 1, EvalEvery: 0,
		Seed:      3 + uint64(rank)*rankSeedStride,
		Shards:    shards,
		Exchanger: ex,
	}
	if mutate != nil {
		mutate(&tc)
	}
	res, err := net.TrainContext(context.Background(), shard, test, tc)
	if err != nil {
		t.Errorf("rank %d: %v", rank, err)
	}
	return res
}

// TestTCPShardedTrainingMatchesMesh trains the same 2-shard workload over
// the in-process mesh and over the TCP hub transport on localhost: the
// codec and framing must be lossless — and, for bf16, the mesh's in-place
// quantization must equal the wire's encode/decode rounding exactly — so
// the final weights agree bit for bit whatever the negotiated compression
// or overlap setting, and both transports leave all replicas in lockstep.
func TestTCPShardedTrainingMatchesMesh(t *testing.T) {
	const classes = 128
	const iters = 12
	ds := distDataset(t, classes, 512)

	variants := []struct {
		name   string
		mutate func(*core.TrainConfig)
	}{
		{"fp32", nil},
		{"bf16", func(tc *core.TrainConfig) { tc.Compress = core.CompressBF16 }},
		{"topk", func(tc *core.TrainConfig) {
			tc.Compress = core.CompressTopK
			tc.TopKFrac = 0.25
		}},
		{"bf16-overlap", func(tc *core.TrainConfig) {
			tc.Compress = core.CompressBF16
			tc.OverlapExchange = true
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := distConfig(classes, optim.ModeHogwild)

			// Mesh reference run, seeds matching trainWithExchanger.
			tc := core.TrainConfig{BatchSize: 16, Iterations: iters, Threads: 1, EvalEvery: 0, Seed: 3}
			if v.mutate != nil {
				v.mutate(&tc)
			}
			meshRes, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 2)
			if err != nil {
				t.Fatal(err)
			}

			// TCP run: rank 0 serves, rank 1 dials, both train concurrently.
			nets := make([]*core.Network, 2)
			for r := range nets {
				if nets[r], err = core.NewNetwork(cfg); err != nil {
					t.Fatal(err)
				}
			}
			codec := NewCodecFormat(nets[0], FormatFor(tc.Compress))
			srv, err := ListenExchanger("127.0.0.1:0", 2, codec, 7)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cli, err := DialExchanger(srv.Addr().String(), 1, 2, codec, 7)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			var wg sync.WaitGroup
			exs := []core.DeltaExchanger{srv, cli}
			for rank := 0; rank < 2; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					trainWithExchanger(t, nets[rank], exs[rank],
						ShardExamples(ds.Train, rank, 2), ds.Test, rank, 2, iters, v.mutate)
				}(rank)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			requireNetsBitIdentical(t, nets[0], nets[1], "TCP replicas")
			requireNetsBitIdentical(t, meshRes.Nets[0], nets[0], "mesh vs TCP")

			sst, cst := srv.Stats(), cli.Stats()
			if sst.Rounds != iters || cst.Rounds != iters {
				t.Fatalf("rounds: server %d client %d, want %d", sst.Rounds, cst.Rounds, iters)
			}
			if cst.BytesOut == 0 || cst.BytesIn == 0 || sst.BytesIn != cst.BytesOut {
				t.Fatalf("byte accounting mismatch: server %+v client %+v", sst, cst)
			}
			// The in-process mesh and the TCP wire must also *price* the
			// exchange identically — dist-comm's loopback measurements stand
			// in for real transport bytes (modulo the fixed frame header).
			meshOut := meshRes.Stats[1].BytesOut
			if cst.BytesOut-meshOut != int64(iters*frameHeaderLen) {
				t.Fatalf("mesh prices rank 1's upload at %d B, TCP shipped %d B (want exactly %d header bytes apart)",
					meshOut, cst.BytesOut, iters*frameHeaderLen)
			}
		})
	}
}

// TestTCPExchangerRaceStress hammers the hub with 3 concurrently
// exchanging ranks over many rounds of random deltas, verifying every
// rank receives the identical merged payload each round. Run under
// -race in CI.
func TestTCPExchangerRaceStress(t *testing.T) {
	dims := [][2]int32{{64, 256}}
	codec := testCodec(dims...)
	const shards = 3
	const rounds = 40

	srv, err := ListenExchanger("127.0.0.1:0", shards, codec, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	exs := make([]core.DeltaExchanger, shards)
	exs[0] = srv
	for rank := 1; rank < shards; rank++ {
		cli, err := DialExchanger(srv.Addr().String(), rank, shards, codec, 7)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		exs[rank] = cli
	}

	hashes := make([][rounds]uint64, shards)
	var wg sync.WaitGroup
	for rank := 0; rank < shards; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(rank) * 77))
			for round := 0; round < rounds; round++ {
				local := randomDelta(r, dims)
				merged, stopAll, err := exs[rank].Exchange(int64(round), local, false)
				if err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				if stopAll {
					t.Errorf("rank %d round %d: unexpected stopAll", rank, round)
					return
				}
				buf, err := codec.AppendDelta(nil, merged)
				if err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				h := fnv.New64a()
				h.Write(buf)
				hashes[rank][round] = h.Sum64()
			}
		}(rank)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for rank := 1; rank < shards; rank++ {
		for round := 0; round < rounds; round++ {
			if hashes[rank][round] != hashes[0][round] {
				t.Fatalf("rank %d round %d merged differs from rank 0", rank, round)
			}
		}
	}
}

// TestTCPHandshakeRejects: wrong shard counts, duplicate ranks and junk
// connections are refused without killing the join phase.
func TestTCPHandshakeRejects(t *testing.T) {
	dims := [][2]int32{{8, 8}}
	codec := testCodec(dims...)
	srv, err := ListenExchanger("127.0.0.1:0", 3, codec, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	if _, err := DialExchanger(addr, 1, 4, codec, 7); err == nil {
		t.Fatal("mismatched shard count accepted")
	}
	if _, err := DialExchanger(addr, 0, 3, codec, 7); err == nil {
		t.Fatal("rank 0 client accepted")
	}
	if _, err := DialExchanger(addr, 1, 3, codec, 8); err == nil {
		t.Fatal("mismatched schedule digest accepted")
	}
	c1, err := DialExchanger(addr, 1, 3, codec, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := DialExchanger(addr, 1, 3, codec, 7); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	c2, err := DialExchanger(addr, 2, 3, codec, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// With both valid peers joined, one exchange completes.
	locals := make([]*core.SparseDelta, 3)
	for i := range locals {
		locals[i] = randomDelta(rand.New(rand.NewSource(int64(i))), dims)
	}
	var wg sync.WaitGroup
	exs := []core.DeltaExchanger{srv, c1, c2}
	for rank := 0; rank < 3; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if _, _, err := exs[rank].Exchange(0, locals[rank], false); err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}(rank)
	}
	wg.Wait()
}

// TestTwoShardConvergesLikeSingle is the acceptance check: on a learnable
// task, 2-shard data-parallel training reaches an accuracy comparable to
// the single-process run (same global examples, half per shard).
func TestTwoShardConvergesLikeSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence comparison trains two full runs; skipped in -short")
	}
	const classes = 256
	ds := distDataset(t, classes, 2000)
	cfg := distConfig(classes, multiThreadMode())

	single, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stc := core.TrainConfig{BatchSize: 64, Epochs: 6, EvalEvery: 40, EvalSamples: 300, Seed: 3}
	sres, err := single.Train(ds.Train, ds.Test, stc)
	if err != nil {
		t.Fatal(err)
	}

	// The sharded run sees the same global batch volume: 2 shards x batch
	// 32 per step, same number of steps per epoch.
	dtc := core.TrainConfig{BatchSize: 32, Epochs: 6, EvalEvery: 40, EvalSamples: 300, Seed: 3}
	dres, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, dtc, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := dres.Results[0].FinalAcc
	t.Logf("single P@1=%.3f, 2-shard P@1=%.3f (exchange %.1f KiB/iter up, %.1f KiB/iter down)",
		sres.FinalAcc, got, dres.Stats[0].BytesOutPerRound()/1024, dres.Stats[0].BytesInPerRound()/1024)
	if got < 0.25 {
		t.Fatalf("2-shard run failed to learn: P@1 = %.3f", got)
	}
	if got < sres.FinalAcc-0.15 {
		t.Fatalf("2-shard P@1 %.3f is not within noise of single-process %.3f", got, sres.FinalAcc)
	}
}

// TestScheduleDigestCoversCompression: two ranks launched with different
// -compress settings would merge incompatible deltas; the handshake
// digest must tell them apart. OverlapExchange is deliberately excluded —
// it changes only local scheduling, so overlapped and synchronous
// replicas may legitimately share a group.
func TestScheduleDigestCoversCompression(t *testing.T) {
	cfg := distConfig(64, optim.ModeHogwild)
	base := core.TrainConfig{BatchSize: 16, Iterations: 100}
	d0 := ScheduleDigest(cfg, base, 42)

	same := base
	if ScheduleDigest(cfg, same, 42) != d0 {
		t.Fatal("digest not deterministic for identical settings")
	}
	bf16 := base
	bf16.Compress = core.CompressBF16
	if ScheduleDigest(cfg, bf16, 42) == d0 {
		t.Fatal("digest blind to the compression mode")
	}
	topkA, topkB := base, base
	topkA.Compress, topkA.TopKFrac = core.CompressTopK, 0.1
	topkB.Compress, topkB.TopKFrac = core.CompressTopK, 0.25
	if ScheduleDigest(cfg, topkA, 42) == ScheduleDigest(cfg, topkB, 42) {
		t.Fatal("digest blind to the topk fraction")
	}
	overlapped := base
	overlapped.OverlapExchange = true
	if ScheduleDigest(cfg, overlapped, 42) != d0 {
		t.Fatal("digest must not cover OverlapExchange: mixed groups stay in lockstep")
	}
	batch := base
	batch.BatchSize = 32
	if ScheduleDigest(cfg, batch, 42) == d0 {
		t.Fatal("digest blind to the batch size")
	}
}

// TestOverlapRebuildRaceStress drives the overlap pipeline's background
// exchange goroutine concurrently with multi-threaded workers and an
// aggressive hash-table rebuild schedule — the three async mechanisms
// sharing the network. Run under -race in CI; correctness (lockstep) is
// still asserted here.
func TestOverlapRebuildRaceStress(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 512)
	cfg := distConfig(classes, multiThreadMode())
	cfg.RebuildN0 = 3 // rebuild every few batches, overlapping the exchange
	tc := core.TrainConfig{
		BatchSize: 16, Iterations: 30, Threads: 2, EvalEvery: 7, Seed: 3,
		OverlapExchange: true,
		Compress:        core.CompressTopK, TopKFrac: 0.5,
	}
	res, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireNetsBitIdentical(t, res.Nets[0], res.Nets[1], "overlap+rebuild replicas")
	if res.Results[0].Rebuilds == 0 {
		t.Fatal("no rebuilds fired; stress is vacuous")
	}
}

// TestTwoShardTopKConvergesLikeUncompressed is the compression acceptance
// check: 2-shard training with overlapped topk:0.25 exchange must reach
// an accuracy comparable to the uncompressed 2-shard run — error feedback
// keeps the dropped 75% of gradient mass flowing, just one horizon late.
func TestTwoShardTopKConvergesLikeUncompressed(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence comparison trains two full runs; skipped in -short")
	}
	const classes = 256
	ds := distDataset(t, classes, 2000)
	cfg := distConfig(classes, multiThreadMode())

	tc := core.TrainConfig{BatchSize: 32, Epochs: 6, EvalEvery: 40, EvalSamples: 300, Seed: 3}
	plain, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, 2)
	if err != nil {
		t.Fatal(err)
	}

	ctc := tc
	ctc.Compress, ctc.TopKFrac = core.CompressTopK, 0.25
	ctc.OverlapExchange = true
	comp, err := TrainSharded(context.Background(), cfg, ds.Train, ds.Test, ctc, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, want := comp.Results[0].FinalAcc, plain.Results[0].FinalAcc
	ratio := comp.Stats[0].BytesOutPerRound() / plain.Stats[0].BytesOutPerRound()
	t.Logf("2-shard P@1: fp32 %.3f, topk:0.25+overlap %.3f (payload ratio %.2f)", want, got, ratio)
	if got < 0.25 {
		t.Fatalf("compressed 2-shard run failed to learn: P@1 = %.3f", got)
	}
	if got < want-0.15 {
		t.Fatalf("topk:0.25 P@1 %.3f is not within noise of uncompressed %.3f", got, want)
	}
	if ratio > 0.5 {
		t.Fatalf("topk:0.25 shipped %.2fx of the fp32 payload, want well under half", ratio)
	}
}

// TestShardTrainConfigDegenerate: schedule derivation must not panic
// when the dataset is smaller than the shard count (the CLI validates,
// but the exported helper must stay total).
func TestShardTrainConfigDegenerate(t *testing.T) {
	tc := ShardTrainConfig(core.TrainConfig{Epochs: 1}, 3, 0, 4)
	if tc.BatchSize < 1 || tc.Iterations < 1 {
		t.Fatalf("degenerate schedule: batch %d, iterations %d", tc.BatchSize, tc.Iterations)
	}
	// Normal path: every rank derives the identical schedule.
	a := ShardTrainConfig(core.TrainConfig{Epochs: 2, BatchSize: 32}, 1001, 0, 3)
	b := ShardTrainConfig(core.TrainConfig{Epochs: 2, BatchSize: 32}, 1001, 2, 3)
	if a.BatchSize != b.BatchSize || a.Iterations != b.Iterations || a.Shards != b.Shards {
		t.Fatalf("ranks derived different schedules: %+v vs %+v", a, b)
	}
	if a.Seed == b.Seed {
		t.Fatal("ranks must draw distinct shuffle seeds")
	}
}

// TestTCPSilentConnDoesNotBlockJoin: a connection that never sends its
// handshake must not stall legitimate ranks forever, and Close must cut
// an in-flight join loose instead of deadlocking.
func TestTCPSilentConnDoesNotBlockJoin(t *testing.T) {
	dims := [][2]int32{{8, 8}}
	codec := testCodec(dims...)
	srv, err := ListenExchanger("127.0.0.1:0", 2, codec, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A scanner-style connection: connect, send nothing.
	silent, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	time.Sleep(20 * time.Millisecond) // let acceptPeers pick it up

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked behind a silent connection")
	}
}

// TestMeshDoubleDepositPoisons: misusing one rank from two goroutines
// must fail the whole group loudly, not deadlock the peers silently.
func TestMeshDoubleDepositPoisons(t *testing.T) {
	dims := [][2]int32{{8, 8}}
	mesh := NewMesh(2, testCodec(dims...))
	local := randomDelta(rand.New(rand.NewSource(2)), dims)
	r0 := mesh.Rank(0)

	first := make(chan error, 1)
	go func() {
		_, _, err := r0.Exchange(0, local, false)
		first <- err
	}()
	// Wait until the first deposit landed, then deposit again on the
	// same rank.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mesh.mu.Lock()
		deposited := mesh.deposits[0] != nil
		mesh.mu.Unlock()
		if deposited || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := r0.Exchange(0, local, false); err == nil {
		t.Fatal("double deposit accepted")
	}
	if err := <-first; err == nil {
		t.Fatal("first deposit survived the poison")
	}
	if _, _, err := mesh.Rank(1).Exchange(0, local, false); err == nil {
		t.Fatal("peer rank not released by the poison")
	}
}

// TestShardsMismatchDetected: wiring an exchanger whose group size
// disagrees with TrainConfig.Shards must fail up front — applying the
// merged delta with the wrong averaging would corrupt training silently.
func TestShardsMismatchDetected(t *testing.T) {
	const classes = 128
	ds := distDataset(t, classes, 256)
	net, err := core.NewNetwork(distConfig(classes, optim.ModeBatchSync))
	if err != nil {
		t.Fatal(err)
	}
	tc := core.TrainConfig{
		BatchSize: 16, Iterations: 2, Threads: 1,
		Exchanger: NewMesh(4, nil).Rank(0), // group of 4, Shards defaults to 1
	}
	if _, err := net.TrainContext(context.Background(), ds.Train, ds.Test, tc); err == nil {
		t.Fatal("Shards/exchanger group-size mismatch accepted")
	}
}
