package dist

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// ExchangeStats accounts one exchanger's measured communication: encoded
// bytes submitted (the replica's upload — the §6 sparse payload), encoded
// bytes of merged deltas received (download), and exchange rounds.
type ExchangeStats struct {
	Rounds   int64
	BytesOut int64
	BytesIn  int64
}

// BytesOutPerRound returns the mean measured upload per exchange round.
func (s ExchangeStats) BytesOutPerRound() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.BytesOut) / float64(s.Rounds)
}

// BytesInPerRound returns the mean measured download per exchange round.
func (s ExchangeStats) BytesInPerRound() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.BytesIn) / float64(s.Rounds)
}

// Mesh is the in-process all-reduce over SparseDeltas: N replicas in one
// process each hold a rank exchanger, every Exchange is a barrier, and
// the last depositor merges all ranks' deltas in rank order — one merge,
// shared read-only by every rank, so all replicas apply bit-identical
// updates. With one shard the mesh degenerates to a loopback that echoes
// the local delta back, which the dist-comm experiment uses as a
// measurement tap (the training step is bit-identical to a local run,
// but every delta's encoded size is measured).
//
// Byte counts are measured through Codec.EncodedSize — the exact wire
// size the TCP transport would ship — without materializing buffers.
type Mesh struct {
	shards int
	codec  *Codec

	mu   sync.Mutex
	cond *sync.Cond
	err  error

	step         int64
	round        int64
	full         bool // current round merged, being picked up
	depositCount int
	pickups      int
	deposits     []*core.SparseDelta
	stops        []bool
	mergeScratch *core.SparseDelta
	merged       *core.SparseDelta
	mergedSize   int64
	stopAll      bool
	stats        []ExchangeStats
}

// NewMesh builds a mesh for the given shard count. codec, when non-nil,
// prices every exchanged delta for the byte accounting; nil disables
// measurement.
func NewMesh(shards int, codec *Codec) *Mesh {
	m := &Mesh{
		shards:   shards,
		codec:    codec,
		deposits: make([]*core.SparseDelta, shards),
		stops:    make([]bool, shards),
		stats:    make([]ExchangeStats, shards),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Rank returns rank r's exchanger. Each rank must be driven by exactly
// one training goroutine.
func (m *Mesh) Rank(r int) core.DeltaExchanger {
	if r < 0 || r >= m.shards {
		panic(fmt.Sprintf("dist: mesh rank %d out of range [0,%d)", r, m.shards))
	}
	return &meshRank{m: m, rank: r}
}

// Fail poisons the mesh: every pending and future Exchange returns err.
// TrainSharded calls it when a replica dies so its peers unblock instead
// of waiting on a barrier that can never fill.
func (m *Mesh) Fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil {
		m.err = err
	}
	m.cond.Broadcast()
}

// Stats returns a snapshot of every rank's exchange accounting.
func (m *Mesh) Stats() []ExchangeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ExchangeStats(nil), m.stats...)
}

type meshRank struct {
	m    *Mesh
	rank int
}

// Shards implements core.ShardCounter so TrainContext can cross-check
// TrainConfig.Shards against the mesh's group size.
func (mr *meshRank) Shards() int { return mr.m.shards }

// Exchange implements core.DeltaExchanger as a sense barrier: deposit,
// wait for the round to fill, pick the shared merged delta up; the last
// pickup resets the round. Merging happens once, in rank order, under the
// lock — deterministic and identical for every rank.
func (mr *meshRank) Exchange(step int64, local *core.SparseDelta, stop bool) (*core.SparseDelta, bool, error) {
	m := mr.m
	var localSize int64
	if m.codec != nil {
		// Round the deposit through the codec's wire precision (bf16) so
		// the in-process merge sums exactly what a TCP peer would have
		// read off the wire; size it after rounding.
		m.codec.Quantize(local)
		localSize = int64(m.codec.EncodedSize(local))
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// A fast rank may lap a slow one: wait for the previous round to be
	// fully drained before depositing into the next.
	for m.err == nil && m.full {
		m.cond.Wait()
	}
	if m.err != nil {
		return nil, false, m.err
	}
	if m.deposits[mr.rank] != nil {
		// Poison like the desync path: the offending rank stops
		// exchanging, so peers waiting on its next deposit would
		// otherwise block forever.
		m.err = fmt.Errorf("dist: mesh rank %d deposited twice in one round", mr.rank)
		m.cond.Broadcast()
		return nil, false, m.err
	}
	if m.depositCount == 0 {
		m.step = step
	} else if step != m.step {
		m.err = fmt.Errorf("dist: mesh desynchronized: rank %d at step %d, group at %d", mr.rank, step, m.step)
		m.cond.Broadcast()
		return nil, false, m.err
	}
	m.deposits[mr.rank] = local
	m.stops[mr.rank] = stop
	m.depositCount++
	myRound := m.round

	if m.depositCount == m.shards {
		merged, err := core.MergeDeltas(m.mergeScratch, m.deposits)
		if err != nil {
			m.err = err
			m.cond.Broadcast()
			return nil, false, err
		}
		if m.shards > 1 {
			m.mergeScratch = merged
		}
		if m.codec != nil {
			// The merged sum re-rounds like the TCP hub's broadcast
			// (2-byte values on the wire): every replica applies the
			// quantized merge, transport-independently. Idempotent for
			// the 1-shard loopback, whose deposit is already rounded.
			m.codec.Quantize(merged)
		}
		m.merged = merged
		m.stopAll = false
		for _, s := range m.stops {
			m.stopAll = m.stopAll || s
		}
		if m.codec != nil {
			if m.shards == 1 {
				m.mergedSize = localSize
			} else {
				m.mergedSize = int64(m.codec.EncodedSize(merged))
			}
		}
		m.full = true
		m.cond.Broadcast()
	} else {
		for m.err == nil && !(m.full && m.round == myRound) {
			m.cond.Wait()
		}
		// A poison landing after this round merged does not void its
		// result: a replica that exits (and Fails the mesh) right after
		// picking up the final stop-coordinated round must not rob its
		// slower peers of that same round, or they would halt one step
		// behind with diverged weights.
		if !(m.full && m.round == myRound) {
			return nil, false, m.err
		}
	}

	merged, stopAll := m.merged, m.stopAll
	st := &m.stats[mr.rank]
	st.Rounds++
	st.BytesOut += localSize
	st.BytesIn += m.mergedSize
	m.pickups++
	if m.pickups == m.shards {
		m.pickups, m.depositCount = 0, 0
		for i := range m.deposits {
			m.deposits[i] = nil
		}
		m.full = false
		m.round++
		m.cond.Broadcast()
	}
	return merged, stopAll, nil
}
