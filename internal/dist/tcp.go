package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// The TCP transport is a hub: rank 0 listens and merges, ranks 1..N-1
// dial in. Every frame is length-prefixed; each round, every client sends
// its encoded local delta and receives the encoded merged delta back —
// one upload and one download of §6's sparse payload per replica per
// batch, which is exactly what the byte accounting measures.
//
// Handshake (client → server): magic[4] | rank u16 | shards u16 |
// digest u64. Server ack: magic[4] | status u8 (0 = ok).
// Round frame (both ways): step u64 | flags u8 (bit0 = stop) | len u32 |
// payload (Codec-encoded delta).
// All integers little-endian.
//
// The digest is an opaque caller-computed fingerprint of everything the
// replicas must agree on beyond layer shapes (which the codec already
// validates): network config including the weight-init seed and Adam
// hyperparameters, batch size, iteration count. Ranks whose digests
// differ would silently diverge — same merged delta, different step
// arithmetic — so the server refuses them at join time.

var tcpMagic = [4]byte{'S', 'D', 'X', '0' + codecVersion}

const (
	frameHeaderLen = 13
	// maxFramePayload bounds a peer-announced payload length before
	// allocation; the codec's shape validation bounds it far tighter
	// afterwards.
	maxFramePayload = 1 << 30
)

// TCPServer is rank 0 of a TCP-sharded group: it accepts the other
// ranks' connections, and on every Exchange gathers their deltas, merges
// all shards in rank order, and broadcasts the merged result.
type TCPServer struct {
	codec  *Codec
	shards int
	digest uint64
	ln     net.Listener

	ready   chan struct{} // closed once all peers joined (or joining failed)
	joinErr error
	peers   []*tcpPeer // by rank; index 0 unused

	// joinMu/joining track the connection currently mid-handshake so
	// Close can cut it loose instead of waiting out its read.
	joinMu  sync.Mutex
	joining net.Conn

	closeOnce sync.Once
	closed    chan struct{}

	encodeBuf    []byte
	mergeScratch *core.SparseDelta
	parts        []*core.SparseDelta

	mu    sync.Mutex
	stats ExchangeStats
}

// tcpPeer is one connected client rank, plus its per-round scratch.
type tcpPeer struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	payload []byte
	delta   *core.SparseDelta
	step    int64
	stop    bool
	read    int
	err     error
}

// ListenExchanger binds addr and starts accepting the group's other
// ranks in the background; the first Exchange call waits until all
// shards-1 peers have joined, and peers whose schedule digest disagrees
// are refused (see the protocol comment). The returned server is rank
// 0's core.DeltaExchanger.
func ListenExchanger(addr string, shards int, codec *Codec, digest uint64) (*TCPServer, error) {
	if shards < 2 {
		return nil, fmt.Errorf("dist: TCP exchange needs at least 2 shards, got %d", shards)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{
		codec:  codec,
		shards: shards,
		digest: digest,
		ln:     ln,
		ready:  make(chan struct{}),
		peers:  make([]*tcpPeer, shards),
		closed: make(chan struct{}),
		parts:  make([]*core.SparseDelta, shards),
	}
	go s.acceptPeers()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Shards implements core.ShardCounter (the group size the server was
// configured with).
func (s *TCPServer) Shards() int { return s.shards }

// handshakeTimeout bounds how long one joining connection may sit
// silent before the join loop moves on: without it a port scanner or
// half-open socket that never sends its hello would stall every
// legitimate rank queued behind it.
const handshakeTimeout = 10 * time.Second

// roundTimeout bounds every round's reads and writes. A synchronous
// exchange legitimately waits out the slowest peer's between-batch work
// (evaluations, rebuild snapshots) but never minutes of it; a peer that
// is SIGSTOPed, partitioned without an RST, or deadlocked would
// otherwise hang every rank's training loop forever with no error.
const roundTimeout = 5 * time.Minute

// joinTimeout bounds how long the server's first Exchange waits for the
// group to assemble. It comfortably exceeds the clients' dial-retry
// window, so it only fires when a peer is truly never coming (crashed
// before dialing, wrong address) — the one case that would otherwise
// hang rank 0 forever.
const joinTimeout = 3 * time.Minute

// acceptPeers runs the join phase: accept connections until every rank
// 1..shards-1 has completed a valid handshake. Invalid, silent or
// duplicate handshakes are refused without aborting the join.
func (s *TCPServer) acceptPeers() {
	defer close(s.ready)
	joined := 0
	for joined < s.shards-1 {
		conn, err := s.ln.Accept()
		if err != nil {
			s.joinErr = fmt.Errorf("dist: accepting shard: %w", err)
			return
		}
		s.joinMu.Lock()
		s.joining = conn
		s.joinMu.Unlock()
		conn.SetDeadline(time.Now().Add(handshakeTimeout))
		rank, err := s.handshake(conn)
		conn.SetDeadline(time.Time{})
		s.joinMu.Lock()
		s.joining = nil
		s.joinMu.Unlock()
		if err != nil {
			conn.Close()
			continue
		}
		s.peers[rank] = &tcpPeer{
			conn: conn,
			br:   bufio.NewReader(conn),
			bw:   bufio.NewWriter(conn),
		}
		joined++
	}
}

// handshake validates one joining client and acks it.
func (s *TCPServer) handshake(conn net.Conn) (int, error) {
	var hello [16]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, err
	}
	rank := int(binary.LittleEndian.Uint16(hello[4:6]))
	shards := int(binary.LittleEndian.Uint16(hello[6:8]))
	digest := binary.LittleEndian.Uint64(hello[8:16])
	ok := [4]byte(hello[:4]) == tcpMagic &&
		shards == s.shards &&
		digest == s.digest &&
		rank >= 1 && rank < s.shards &&
		s.peers[rank] == nil
	var ack [5]byte
	copy(ack[:], tcpMagic[:])
	if !ok {
		ack[4] = 1
	}
	if _, err := conn.Write(ack[:]); err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("dist: rejected handshake (rank %d, shards %d, digest %#x)", rank, shards, digest)
	}
	return rank, nil
}

// ScheduleDigest fingerprints everything the replicas of one group must
// agree on beyond layer shapes: the full network config (weight-init
// seed, Adam hyperparameters, table settings), the per-shard batch size,
// the iteration count, the group's base shuffle seed (before rank
// striping), and the delta compression mode with its top-k fraction — a
// replica shipping bf16 or a thinned delta into a group expecting exact
// gradients would silently diverge every rank's weights. tc is read for
// BatchSize, Iterations, Compress and TopKFrac only (never rendered
// whole: it carries function values); OverlapExchange is deliberately
// excluded, since overlapped and synchronous replicas run the same
// exchange sequence and may share a group. Every hashed field is plain
// data, so the rendering is deterministic across processes.
func ScheduleDigest(cfg core.Config, tc core.TrainConfig, baseSeed uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d|%d|%d|%d|%g", cfg, tc.BatchSize, tc.Iterations, baseSeed, int(tc.Compress), tc.TopKFrac)
	return h.Sum64()
}

// Exchange implements core.DeltaExchanger for rank 0: gather every
// client's delta for this step, merge all shards in rank order, and
// broadcast the merged delta with the coordinated stop flag.
func (s *TCPServer) Exchange(step int64, local *core.SparseDelta, stop bool) (*core.SparseDelta, bool, error) {
	join := time.NewTimer(joinTimeout)
	select {
	case <-s.ready:
	case <-s.closed:
		join.Stop()
		return nil, false, fmt.Errorf("dist: exchanger closed")
	case <-join.C:
		return nil, false, fmt.Errorf("dist: group did not assemble within %v (a rank crashed before dialing, or was launched with the wrong address?)", joinTimeout)
	}
	join.Stop()
	if s.joinErr != nil {
		return nil, false, s.joinErr
	}

	// Gather: one concurrent read per peer so slow links overlap. The
	// round deadline covers both directions; it is re-armed every round.
	var wg sync.WaitGroup
	for _, p := range s.peers[1:] {
		wg.Add(1)
		go func(p *tcpPeer) {
			defer wg.Done()
			p.conn.SetDeadline(time.Now().Add(roundTimeout))
			p.step, p.stop, p.payload, p.read, p.err = readFrame(p.br, p.payload)
			if p.err == nil {
				p.delta, p.err = s.codec.DecodeDelta(p.delta, p.payload)
			}
		}(p)
	}
	wg.Wait()
	var bytesIn int64
	stopAll := stop
	for rank, p := range s.peers[1:] {
		if p.err != nil {
			return nil, false, s.failRound(fmt.Errorf("dist: rank %d: %w", rank+1, p.err))
		}
		if p.step != step {
			return nil, false, s.failRound(fmt.Errorf("dist: rank %d at step %d, server at %d", rank+1, p.step, step))
		}
		stopAll = stopAll || p.stop
		bytesIn += int64(p.read)
	}

	// The clients' deltas arrived through the codec, already rounded to
	// its wire precision; round the hub's own part the same way, then
	// round the merged sum exactly as the broadcast encode would, so the
	// delta rank 0 applies is bit-identical to what every client decodes.
	s.codec.Quantize(local)
	s.parts[0] = local
	for r := 1; r < s.shards; r++ {
		s.parts[r] = s.peers[r].delta
	}
	merged, err := core.MergeDeltas(s.mergeScratch, s.parts)
	if err != nil {
		return nil, false, s.failRound(err)
	}
	s.mergeScratch = merged
	s.codec.Quantize(merged)

	s.encodeBuf, err = s.codec.AppendDelta(s.encodeBuf[:0], merged)
	if err != nil {
		return nil, false, s.failRound(err)
	}
	var bytesOut int64
	var werr error
	var wmu sync.Mutex
	for _, p := range s.peers[1:] {
		wg.Add(1)
		go func(p *tcpPeer) {
			defer wg.Done()
			n, err := writeFrame(p.bw, step, stopAll, s.encodeBuf)
			wmu.Lock()
			bytesOut += int64(n)
			if err != nil && werr == nil {
				werr = err
			}
			wmu.Unlock()
		}(p)
	}
	wg.Wait()
	if werr != nil {
		return nil, false, s.failRound(fmt.Errorf("dist: broadcasting merged delta: %w", werr))
	}

	s.mu.Lock()
	s.stats.Rounds++
	s.stats.BytesIn += bytesIn
	s.stats.BytesOut += bytesOut
	s.mu.Unlock()
	return merged, stopAll, nil
}

// failRound tears down the peer connections when a round cannot
// complete — the hub's analog of Mesh.Fail. A rank blocked reading the
// merged frame (it already uploaded this round) unblocks with a
// connection error immediately instead of waiting out roundTimeout; the
// group is dead either way, since the hub's training loop is about to
// exit on the returned error.
func (s *TCPServer) failRound(err error) error {
	for _, p := range s.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	return err
}

// Stats returns the server's transport accounting: BytesIn is the sum of
// client uploads received, BytesOut the merged broadcasts sent.
func (s *TCPServer) Stats() ExchangeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close shuts the listener and every peer connection down. In-flight
// Exchange calls on either side fail with I/O errors.
func (s *TCPServer) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.ln.Close()
		// Cut a connection stuck mid-handshake loose so the join phase
		// (which owns s.peers until it finishes) can exit now rather
		// than after its read times out.
		s.joinMu.Lock()
		if s.joining != nil {
			s.joining.Close()
		}
		s.joinMu.Unlock()
		<-s.ready
		for _, p := range s.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	return nil
}

// TCPClient is one non-zero rank of a TCP-sharded group.
type TCPClient struct {
	codec  *Codec
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	shards int

	encodeBuf []byte
	payload   []byte
	scratch   *core.SparseDelta

	mu    sync.Mutex
	stats ExchangeStats
}

// dialRetryWindow is how long DialExchanger keeps retrying a failing
// connection: in a multi-process launch the rank-0 server and its
// clients start in arbitrary order, so "connection refused" usually
// just means rank 0 is not up yet.
const (
	dialRetryWindow = time.Minute
	dialRetryPause  = 250 * time.Millisecond
)

// DialExchanger connects rank (1..shards-1) to the rank-0 server at addr
// and completes the handshake, retrying connection failures for up to a
// minute so launch order between the processes does not matter. digest
// must match the server's (see the protocol comment); a mismatch —
// replicas launched with different batch/iteration/seed/model settings —
// is rejected at join time instead of silently diverging the weights.
// The returned client is that rank's core.DeltaExchanger.
func DialExchanger(addr string, rank, shards int, codec *Codec, digest uint64) (*TCPClient, error) {
	if rank < 1 || rank >= shards {
		return nil, fmt.Errorf("dist: TCP client rank must be in [1,%d), got %d", shards, rank)
	}
	var conn net.Conn
	var err error
	for deadline := time.Now().Add(dialRetryWindow); ; time.Sleep(dialRetryPause) {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: rank %d could not reach the exchange at %s: %w", rank, addr, err)
		}
	}
	// Bound the handshake like the server does: a connect that landed in
	// the listen backlog after the group filled (restarted rank, extra
	// rank, wrong -shards) would otherwise hang on the ack read forever.
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var hello [16]byte
	copy(hello[:4], tcpMagic[:])
	binary.LittleEndian.PutUint16(hello[4:6], uint16(rank))
	binary.LittleEndian.PutUint16(hello[6:8], uint16(shards))
	binary.LittleEndian.PutUint64(hello[8:16], digest)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	var ack [5]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d handshake got no ack (group already full, or wrong address?): %w", rank, err)
	}
	conn.SetDeadline(time.Time{})
	if [4]byte(ack[:4]) != tcpMagic || ack[4] != 0 {
		conn.Close()
		return nil, fmt.Errorf("dist: server at %s rejected rank %d/%d handshake (duplicate rank, or mismatched -shards/batch/iterations/seed/model settings?)", addr, rank, shards)
	}
	return &TCPClient{
		codec:  codec,
		conn:   conn,
		br:     bufio.NewReader(conn),
		bw:     bufio.NewWriter(conn),
		shards: shards,
	}, nil
}

// Shards implements core.ShardCounter (the group size the client dialed
// with).
func (c *TCPClient) Shards() int { return c.shards }

// Exchange implements core.DeltaExchanger: upload the encoded local
// delta, download and decode the merged one. Each round re-arms the
// round deadline, so a hung hub surfaces as an error instead of
// blocking the replica forever.
func (c *TCPClient) Exchange(step int64, local *core.SparseDelta, stop bool) (*core.SparseDelta, bool, error) {
	var err error
	c.encodeBuf, err = c.codec.AppendDelta(c.encodeBuf[:0], local)
	if err != nil {
		return nil, false, err
	}
	c.conn.SetDeadline(time.Now().Add(roundTimeout))
	sent, err := writeFrame(c.bw, step, stop, c.encodeBuf)
	if err != nil {
		return nil, false, fmt.Errorf("dist: sending delta: %w", err)
	}
	mstep, stopAll, payload, read, err := readFrame(c.br, c.payload)
	if err != nil {
		return nil, false, fmt.Errorf("dist: receiving merged delta: %w", err)
	}
	c.payload = payload
	if mstep != step {
		return nil, false, fmt.Errorf("dist: merged delta for step %d, expected %d", mstep, step)
	}
	c.scratch, err = c.codec.DecodeDelta(c.scratch, payload)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.stats.Rounds++
	c.stats.BytesOut += int64(sent)
	c.stats.BytesIn += int64(read)
	c.mu.Unlock()
	return c.scratch, stopAll, nil
}

// Stats returns the client's measured upload/download accounting.
func (c *TCPClient) Stats() ExchangeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close drops the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

// writeFrame emits one length-prefixed round frame and flushes, returning
// the bytes written. The sender enforces the same payload bound the
// receiver does: shipping an over-limit frame would waste the transfer
// before the peer rejects it, and a >4 GiB payload would wrap the u32
// length and desync the stream.
func writeFrame(bw *bufio.Writer, step int64, stop bool, payload []byte) (int, error) {
	if len(payload) > maxFramePayload {
		return 0, fmt.Errorf("dist: delta of %d bytes exceeds the %d frame limit", len(payload), maxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(step))
	if stop {
		hdr[8] = 1
	}
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := bw.Write(payload); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return frameHeaderLen + len(payload), nil
}

// readFrame reads one round frame into buf (grown as needed), returning
// the header fields, the payload view and the total bytes consumed.
func readFrame(br *bufio.Reader, buf []byte) (step int64, stop bool, payload []byte, n int, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, false, buf, 0, err
	}
	step = int64(binary.LittleEndian.Uint64(hdr[:8]))
	stop = hdr[8]&1 != 0
	plen := binary.LittleEndian.Uint32(hdr[9:13])
	if plen > maxFramePayload {
		return 0, false, buf, 0, fmt.Errorf("dist: frame payload %d exceeds limit", plen)
	}
	if cap(buf) < int(plen) {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	if _, err = io.ReadFull(br, buf); err != nil {
		return 0, false, buf, 0, err
	}
	return step, stop, buf, frameHeaderLen + int(plen), nil
}
