package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "tables",
		Title: "Incremental table rebuilds and batched hash kernels (§4.2 updating overhead)",
		Run:   runTables,
	})
}

// runTables measures what the vectorized hash kernels and the dirty-row
// incremental rebuild path buy on the paper architecture:
//
//  1. a controlled drift sweep — the same network rebuilt after exactly
//     d% of the wide sampled layer's rows changed, incremental vs a
//     FullRebuild twin (the §4.2 "Updating Overhead" measurement; the
//     repo's acceptance bar is ≥2x at ≤20% drift);
//  2. per-family dense hash throughput, per-row HashDense vs the batched
//     block-wise HashDenseRows entry point the rebuilds feed;
//  3. a real training A/B on the Delicious workload with synchronous
//     rebuilds, reporting the measured drift fraction and per-rebuild
//     stall under each rebuild mode.
func runTables(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "tables", Title: "Hash-table rebuild cost: dirty-row incremental vs full"}
	rep.AddNote("workload %s: %d classes, Simhash K=%d L=%d, threads=%d", w.ds.Name, w.ds.NumClasses, w.k, sc.L, opts.Threads)

	sweep, speedupAt20, err := runDriftSweep(opts, w)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, sweep)
	rep.AddNote("speedup at 20%% drift: %.2fx (acceptance bar: >= 2x)", speedupAt20)

	rep.Tables = append(rep.Tables, runHashThroughput(opts, w, sc))

	ab, driftNote, err := runRebuildModeAB(opts, w)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, ab)
	if driftNote != "" {
		rep.AddNote("%s", driftNote)
	}
	return rep, nil
}

// runDriftSweep rebuilds two identically-seeded networks — one on the
// incremental path, one forced to FullRebuild — after stamping exactly a
// chosen fraction of output-layer rows as changed, and times
// RebuildTables on each. Drift is injected through the public delta
// path (one tiny gradient cell per row), the same route training drift
// takes, so dirty marking and code invalidation are exercised for real.
func runDriftSweep(opts Options, w *workload) (Table, float64, error) {
	mkNet := func(full bool) (*core.Network, error) {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.FullRebuild = full
		return core.NewNetwork(cfg)
	}
	incr, err := mkNet(false)
	if err != nil {
		return Table{}, 0, err
	}
	full, err := mkNet(true)
	if err != nil {
		return Table{}, 0, err
	}
	classes := incr.OutputDim()
	inDim := incr.Layer(incr.NumLayers() - 1).In()

	// driftRows applies one tiny gradient cell to each of the first nd
	// output rows of both twins. Both networks see identical deltas, so
	// their weights stay bit-equal through the sweep.
	driftRows := func(nd int) error {
		d := &core.SparseDelta{Layers: make([]core.LayerDelta, incr.NumLayers())}
		for li := range d.Layers {
			d.Layers[li].RowOff = []int32{0}
		}
		out := &d.Layers[incr.NumLayers()-1]
		for j := 0; j < nd; j++ {
			out.Rows = append(out.Rows, int32(j))
			out.RowOff = append(out.RowOff, int32(j+1))
			out.Cols = append(out.Cols, int32(j%inDim))
			out.Vals = append(out.Vals, 1e-4)
			out.Bias = append(out.Bias, 0)
		}
		for _, n := range []*core.Network{incr, full} {
			if _, err := n.ApplyDelta(d, 1e-6, 1, opts.Threads); err != nil {
				return err
			}
		}
		return nil
	}

	// Consume the construction-time all-dirty state and warm the
	// per-layer rebuild scratch before anything is timed.
	incr.RebuildTables(opts.Threads)
	full.RebuildTables(opts.Threads)

	tab := Table{
		Title:  "rebuild time vs drift fraction (controlled)",
		Header: []string{"Drift", "Dirty rows", "Full rebuild", "Incremental", "Speedup"},
	}
	var speedupAt20 float64
	for _, drift := range []float64{0.05, 0.10, 0.20, 0.50, 1.00} {
		nd := int(drift * float64(classes))
		// Each rep re-drifts before timing: the incremental rebuild
		// consumes its dirty set, so every rep must see the same dirty
		// fraction. The full twin gets the same deltas to stay bit-equal.
		var incrMS, fullMS float64
		for rep := 0; rep < 3; rep++ {
			if err := driftRows(nd); err != nil {
				return Table{}, 0, err
			}
			t0 := time.Now()
			incr.RebuildTables(opts.Threads)
			if ms := float64(time.Since(t0)) / 1e6; rep == 0 || ms < incrMS {
				incrMS = ms
			}
			t0 = time.Now()
			full.RebuildTables(opts.Threads)
			if ms := float64(time.Since(t0)) / 1e6; rep == 0 || ms < fullMS {
				fullMS = ms
			}
		}
		speedup := fullMS / incrMS
		if drift == 0.20 {
			speedupAt20 = speedup
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f%%", drift*100),
			fmt.Sprintf("%d", nd),
			fmt.Sprintf("%.2f ms", fullMS),
			fmt.Sprintf("%.2f ms", incrMS),
			fmt.Sprintf("%.2fx", speedup),
		})
		opts.logf("tables: drift %.0f%% full=%.2fms incr=%.2fms (%.2fx)", drift*100, fullMS, incrMS, speedup)
	}
	return tab, speedupAt20, nil
}

// runHashThroughput compares the per-row dense hash entry point against
// the batched block kernel for every family, at the hidden width every
// sampled output layer actually hashes.
func runHashThroughput(opts Options, w *workload, sc ScaleSpec) Table {
	tab := Table{
		Title:  "dense hash throughput, per-row vs batched (higher is better)",
		Header: []string{"Family", "Per-row rows/s", "Batched rows/s", "Batched/per-row"},
	}
	const hashDim = 128 // hidden width feeding the sampled output layer
	const rows = 512
	block := make([]float32, rows*hashDim)
	rng := opts.Seed | 1
	for i := range block {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if rng%7 == 0 {
			continue // leave ~14% exact zeros, like ReLU activations
		}
		block[i] = float32(int32(uint32(rng))) / float32(1<<31)
	}
	for _, kind := range []lsh.Kind{lsh.KindSimhash, lsh.KindWTA, lsh.KindDWTA, lsh.KindDOPH} {
		fam, err := lsh.New(kind, lsh.Params{Dim: hashDim, K: w.k, L: sc.L, Seed: opts.Seed})
		if err != nil {
			continue // a family that rejects these params just drops out of the table
		}
		nf := fam.NumFuncs()
		out := make([]uint32, rows*nf)
		perRow := measureRowsPerSec(func() {
			for j := 0; j < rows; j++ {
				fam.HashDense(block[j*hashDim:(j+1)*hashDim], out[j*nf:(j+1)*nf])
			}
		}, rows)
		batched := measureRowsPerSec(func() {
			fam.HashDenseRows(block, rows, out)
		}, rows)
		tab.Rows = append(tab.Rows, []string{
			kind.String(),
			fmt.Sprintf("%.0f", perRow),
			fmt.Sprintf("%.0f", batched),
			fmt.Sprintf("%.2fx", batched/perRow),
		})
		opts.logf("tables: %s per-row %.0f rows/s, batched %.0f rows/s", kind, perRow, batched)
	}
	return tab
}

// runRebuildModeAB trains the Delicious workload twice with synchronous
// rebuilds on an aggressive schedule — once forced to full rebuilds, once
// on the incremental path — and reports the per-rebuild stall next to the
// measured drift (rows re-hashed vs re-inserted from the code memo).
func runRebuildModeAB(opts Options, w *workload) (Table, string, error) {
	const rebuildN0 = 10
	train := func(fullRebuild bool) (*core.TrainResult, error) {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.RebuildN0 = rebuildN0
		cfg.FullRebuild = fullRebuild
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		tc := w.trainConfig(opts, opts.Threads)
		tc.Iterations = 8 * rebuildN0
		tc.EvalEvery = 0
		tc.SyncRebuild = true // charge whole rebuilds to the stall clock
		return net.Train(w.ds.Train, w.ds.Test, tc)
	}
	opts.logf("tables: training A/B, full-rebuild pass")
	fullRes, err := train(true)
	if err != nil {
		return Table{}, "", err
	}
	opts.logf("tables: training A/B, incremental pass")
	incrRes, err := train(false)
	if err != nil {
		return Table{}, "", err
	}

	tab := Table{
		Title:  "training with synchronous rebuilds (measured drift)",
		Header: []string{"Mode", "Rebuilds", "Stall / rebuild", "Rows rehashed", "Rows reused", "Final P@1"},
	}
	for _, row := range []struct {
		name string
		res  *core.TrainResult
	}{{"full", fullRes}, {"incremental", incrRes}} {
		perMS := 0.0
		if row.res.Rebuilds > 0 {
			perMS = float64(row.res.RebuildStallNS) / float64(row.res.Rebuilds) / 1e6
		}
		tab.Rows = append(tab.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.res.Rebuilds),
			fmt.Sprintf("%.2f ms", perMS),
			fmt.Sprintf("%d", row.res.RowsRehashed),
			fmt.Sprintf("%d", row.res.RowsReused),
			fmtF(row.res.FinalAcc, 3),
		})
	}
	note := ""
	if tot := incrRes.RowsRehashed + incrRes.RowsReused; tot > 0 {
		note = fmt.Sprintf("training drift: %.1f%% of rebuild rows re-hashed under the incremental path",
			100*float64(incrRes.RowsRehashed)/float64(tot))
	}
	return tab, note, nil
}

// measureRowsPerSec times fn (which processes rows rows per call) over
// enough repetitions to fill ~20ms and returns the row throughput.
func measureRowsPerSec(fn func(), rows int) float64 {
	fn() // warm
	var reps int
	t0 := time.Now()
	for time.Since(t0) < 20*time.Millisecond {
		fn()
		reps++
	}
	return float64(rows*reps) / time.Since(t0).Seconds()
}
