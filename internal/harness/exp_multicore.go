package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/hashtable"
	"repro/internal/optim"
	"repro/internal/sampling"
	"repro/internal/vecmath"
)

func init() {
	register(Experiment{
		ID:    "multicore",
		Title: "Multicore hot path: sharded backward thread scaling + quantized mirrors",
		Run:   runMulticore,
	})
}

// runMulticore records the repository's thread-scaling trajectory on the
// sharded-backward engine (BENCH_scaling.json): SLIDE training and exact
// evaluation throughput at 1/2/4/.../GOMAXPROCS workers against the dense
// baseline, plus the fp32-vs-bf16 mirror ablation — end-to-end (training
// throughput and P@1 must hold) and isolated (the quantized column Axpy
// alone, which moves half the bytes). Unlike fig9's fixed-work convergence
// framing this is a pure hot-path throughput sweep: same iteration budget
// per point, speedup-vs-1-thread reported directly. The committed JSON
// carries the machine block, since a scaling curve is meaningless without
// the core count it was measured on.
func runMulticore(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	sweep := opts.ThreadSweep
	if sweep == nil {
		var pow2 []int
		for t := 1; t <= opts.Threads; t *= 2 {
			pow2 = append(pow2, t)
		}
		sweep = defaultThreadSweep(opts.Threads, pow2...)
	}
	iters := 2 * sc.EvalEvery

	type point struct {
		threads   int
		trainPerS float64
		util      float64
		evalPerS  float64
		evalP1    float64
		densePerS float64
	}
	run := func(threads int, format core.MirrorFormat) (*point, *core.Network, error) {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.MirrorFormat = format
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, nil, err
		}
		tc := w.trainConfig(opts, threads)
		tc.Iterations = iters
		tc.EvalEvery = 0
		tr, err := net.Train(w.ds.Train, w.ds.Test, tc)
		if err != nil {
			return nil, nil, err
		}
		pt := &point{threads: threads, util: tr.Utilization}
		if tr.Seconds > 0 {
			pt.trainPerS = float64(tr.Iterations) / tr.Seconds
		}
		evalN := min(len(w.ds.Test), sc.EvalSamples)
		t0 := core.Now()
		ev, err := net.Evaluate(w.ds.Test, evalN, threads, 1)
		if err != nil {
			return nil, nil, err
		}
		if evalSec := core.Now().Sub(t0).Seconds(); evalSec > 0 {
			pt.evalPerS = float64(ev.N) / evalSec
		}
		pt.evalP1 = ev.P1
		return pt, net, nil
	}

	rep := &Report{ID: "multicore", Title: "Thread scaling of the sharded hot path"}
	rep.AddNote("workload %s (%d features, %d classes), %d iterations per point, batch %d, update mode hogwild over per-worker gradient shards",
		w.ds.Name, w.ds.InputDim, w.ds.NumClasses, iters, w.batch)

	tab := Table{
		Title:  "training + eval throughput vs threads",
		Header: []string{"threads", "slide iter/s", "speedup", "util", "eval ex/s", "eval speedup", "dense iter/s"},
	}
	trainS := Series{Name: "slide train", XLabel: "threads", YLabel: "iter/s"}
	evalS := Series{Name: "slide eval", XLabel: "threads", YLabel: "examples/s"}
	denseS := Series{Name: "dense train", XLabel: "threads", YLabel: "iter/s"}
	var base *point
	for _, th := range sweep {
		opts.logf("multicore: threads=%d", th)
		pt, net, err := run(th, core.MirrorFP32)
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = pt
			rep.AddNote("gather/scatter crossover in effect: %.3f (Config.ScatterCrossover pins it; 0 = calibrated at startup)",
				net.KernelPolicy().ScatterMaxDensity)
		}

		dnet, err := dense.New(dense.Config{
			InputDim: w.ds.InputDim, Hidden: []int{128}, Classes: w.ds.NumClasses, Seed: opts.Seed,
			Adam: optim.NewAdam(w.sc.LR),
		})
		if err != nil {
			return nil, err
		}
		dres, err := dnet.Train(w.ds.Train, w.ds.Test, dense.TrainConfig{
			BatchSize: w.batch, Iterations: iters, Threads: th, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		if dres.Seconds > 0 {
			pt.densePerS = float64(dres.Iterations) / dres.Seconds
		}

		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", th),
			fmtF(pt.trainPerS, 2), fmtF(safeRatio(pt.trainPerS, base.trainPerS), 2),
			fmtF(pt.util*100, 0) + "%",
			fmtF(pt.evalPerS, 0), fmtF(safeRatio(pt.evalPerS, base.evalPerS), 2),
			fmtF(pt.densePerS, 2),
		})
		trainS.X = append(trainS.X, float64(th))
		trainS.Y = append(trainS.Y, pt.trainPerS)
		evalS.X = append(evalS.X, float64(th))
		evalS.Y = append(evalS.Y, pt.evalPerS)
		denseS.X = append(denseS.X, float64(th))
		denseS.Y = append(denseS.Y, pt.densePerS)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Series = append(rep.Series, trainS, evalS, denseS)

	// Mirror-format ablation at the widest sweep point: end-to-end
	// training throughput and accuracy with fp32 vs bf16 mirrors, plus
	// the isolated column-Axpy both formats stream on every scatter pass.
	maxTh := sweep[len(sweep)-1]
	opts.logf("multicore: bf16 mirror ablation at %d threads", maxTh)
	f32, _, err := run(maxTh, core.MirrorFP32)
	if err != nil {
		return nil, err
	}
	b16, _, err := run(maxTh, core.MirrorBF16)
	if err != nil {
		return nil, err
	}
	f32GBs, b16GBs := isolatedAxpyRates()
	// Same element count both ways, so the wall-clock speedup is the
	// ratio of element rates (GB/s over the per-element byte width).
	kernelSpeedup := safeRatio(b16GBs/2, f32GBs/4)
	mt := Table{
		Title:  fmt.Sprintf("weight-mirror format ablation (%d threads)", maxTh),
		Header: []string{"mirror", "train iter/s", "eval ex/s", "eval P@1", "isolated col-Axpy GB/s", "isolated col-Axpy speedup"},
	}
	mt.Rows = append(mt.Rows, []string{
		"fp32", fmtF(f32.trainPerS, 2), fmtF(f32.evalPerS, 0), fmtF(f32.evalP1, 3), fmtF(f32GBs, 2), "1.00",
	})
	mt.Rows = append(mt.Rows, []string{
		"bf16", fmtF(b16.trainPerS, 2), fmtF(b16.evalPerS, 0), fmtF(b16.evalP1, 3), fmtF(b16GBs, 2),
		fmtF(kernelSpeedup, 2),
	})
	rep.Tables = append(rep.Tables, mt)
	rep.AddNote("bf16 mirror carries ≤2⁻⁸ relative error per streamed weight; eval P@1 delta fp32→bf16: %+.3f", b16.evalP1-f32.evalP1)
	return rep, nil
}

// isolatedAxpyRates times the two mirror column kernels alone — the
// y += alpha*x over one mirror column — on a working set sized well past
// the last-level cache (128 MiB of fp32 weights) so the comparison is
// bandwidth-shaped like a paper-scale mirror (670K classes × 128 hidden =
// 343 MB fp32). Cache-resident sets invert the result: there the kernels
// are compute-bound and bf16's per-element decode shift costs more than
// the halved bytes save. Returns effective GB/s (weight bytes read per
// second) for fp32 and bf16.
func isolatedAxpyRates() (f32GBs, b16GBs float64) {
	const cols, rows = 262144, 128 // 128 MiB of fp32 weights, 64 MiB of bf16
	wf := make([]float32, cols*rows)
	wb := make([]uint16, cols*rows)
	for i := range wf {
		wf[i] = float32(i%251) * 0.013
		wb[i] = vecmath.BF16FromF32(wf[i])
	}
	dst := make([]float32, rows)

	const sweeps = 4
	time32 := time.Duration(1 << 62)
	time16 := time.Duration(1 << 62)
	for trial := 0; trial < 2; trial++ {
		t0 := time.Now()
		for s := 0; s < sweeps; s++ {
			for c := 0; c < cols; c++ {
				vecmath.Axpy(0.5, wf[c*rows:(c+1)*rows], dst)
			}
		}
		if e := time.Since(t0); e < time32 {
			time32 = e
		}
		t0 = time.Now()
		for s := 0; s < sweeps; s++ {
			for c := 0; c < cols; c++ {
				vecmath.AxpyBF16(0.5, wb[c*rows:(c+1)*rows], dst)
			}
		}
		if e := time.Since(t0); e < time16 {
			time16 = e
		}
	}
	bytes32 := float64(sweeps) * cols * rows * 4
	bytes16 := float64(sweeps) * cols * rows * 2
	return bytes32 / time32.Seconds() / 1e9, bytes16 / time16.Seconds() / 1e9
}
