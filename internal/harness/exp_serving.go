package harness

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/loadgen"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func init() {
	register(Experiment{
		ID:    "serving",
		Title: "Serving under open-loop load: goodput vs offered rate, admission control, response cache",
		Run:   runServing,
	})
}

// servingDurations scales the per-run schedule length so tiny stays fast
// enough for the all-experiments smoke test while medium integrates long
// enough for stable tails.
func servingDurations(scale string) (probe, run time.Duration) {
	switch scale {
	case "tiny":
		return 150 * time.Millisecond, 250 * time.Millisecond
	case "small":
		return 250 * time.Millisecond, 600 * time.Millisecond
	case "medium":
		return 500 * time.Millisecond, 2 * time.Second
	default: // paper
		return time.Second, 4 * time.Second
	}
}

// runServing measures the serving stack's tail-latency engineering under
// open-loop (Poisson) load, end to end over real HTTP:
//
//  1. Train the Delicious workload briefly and stand up the in-process
//     serving front end (micro-batching + adaptive windows).
//  2. Calibrate: an unloaded probe reads the intrinsic p50; a saturating
//     probe reads the capacity (max goodput).
//  3. Sweep offered load across the saturation point twice — once with
//     admission control off (every request queues, the tail collapses
//     beyond capacity) and once with a latency budget (excess arrivals
//     shed with 429, the tail of admitted requests stays bounded).
//  4. Cache phase: a Zipf-skewed cacheable mix (exact + seeded-sampled)
//     with the generation-keyed response cache on vs off.
//
// Its JSON output (slide-bench -exp serving -json BENCH_serving.json)
// joins the repo's committed performance trajectory.
func runServing(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	probeDur, runDur := servingDurations(sc.Name)

	// Brief training so the model is a real one (trained weights change
	// adaptive-sparsity behavior), but serving is the thing under test.
	cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
	net, err := core.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	tc := w.trainConfig(opts, opts.Threads)
	tc.Iterations = 2 * sc.EvalEvery
	tc.EvalEvery = 0
	opts.logf("serving: training %d iterations (threads=%d)", tc.Iterations, opts.Threads)
	if _, err := net.Train(w.ds.Train, w.ds.Test, tc); err != nil {
		return nil, err
	}

	keys := make([]sparse.Vector, 0, 256)
	for i := 0; i < len(w.ds.Test) && i < 256; i++ {
		keys = append(keys, w.ds.Test[i].Features)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("serving: workload has no test examples for keys")
	}

	// drive stands up a fresh server with the given options, runs one
	// open-loop load run against it, and returns both sides' accounting
	// plus the GC's work across the run (the /stats runtime gauges,
	// differenced around the load). A fresh server per run keeps
	// counters and EWMAs uncontaminated across sweep points. Client and
	// server share the process, so the allocation delta is a
	// whole-process upper bound — identical client traffic in compared
	// arms keeps the comparison honest.
	drive := func(so serve.Options, lc loadgen.Config) (loadgen.Result, loadgen.ServerStats, loadgen.GCDelta, error) {
		so.BatchWindow = 2 * time.Millisecond
		so.AdaptiveWindow = true
		srv, err := serve.New(net, so)
		if err != nil {
			return loadgen.Result{}, loadgen.ServerStats{}, loadgen.GCDelta{}, err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		lc.BaseURL = ts.URL
		lc.Keys = keys
		lc.K = 5
		lc.Seed = opts.Seed
		// Warmup arrivals establish connections and prime the server's
		// arrival/service estimators before anything is counted — short
		// measured windows are meaningless without it.
		lc.Warmup = probeDur
		before, err := loadgen.FetchStats(ts.URL)
		if err != nil {
			return loadgen.Result{}, loadgen.ServerStats{}, loadgen.GCDelta{}, err
		}
		res, err := loadgen.Run(context.Background(), lc)
		if err != nil {
			return loadgen.Result{}, loadgen.ServerStats{}, loadgen.GCDelta{}, err
		}
		st, err := loadgen.FetchStats(ts.URL)
		if err != nil {
			return loadgen.Result{}, loadgen.ServerStats{}, loadgen.GCDelta{}, err
		}
		return res, st, loadgen.GCDeltaBetween(before, st), nil
	}

	sweepMix := loadgen.Mix{Exact: 0.5, Sampled: 0.5}

	// Unloaded probe: intrinsic latency at a rate far below capacity.
	unloaded, _, _, err := drive(serve.Options{}, loadgen.Config{
		QPS: 50, Duration: probeDur, Mix: sweepMix, ZipfS: 0,
	})
	if err != nil {
		return nil, err
	}
	p50 := unloaded.P50Millis
	if p50 <= 0 {
		p50 = 0.5
	}
	opts.logf("serving: unloaded p50 %.2fms p99 %.2fms", unloaded.P50Millis, unloaded.P99Millis)

	// Saturating probe: offer far more than the fan-out could absorb;
	// achieved goodput over the measured (post-warmup) window is the
	// capacity estimate the sweep multiplies.
	satQPS := clampF(float64(opts.Threads)*4*1000/p50, 500, 20000)
	sat, _, _, err := drive(serve.Options{}, loadgen.Config{
		QPS: satQPS, Duration: runDur, Mix: sweepMix, ZipfS: 0,
	})
	if err != nil {
		return nil, err
	}
	capacity := sat.GoodputQPS
	if capacity <= 0 {
		return nil, fmt.Errorf("serving: saturating probe at %.0f qps produced no goodput", satQPS)
	}
	opts.logf("serving: capacity ≈ %.0f good qps (probe offered %.0f)", capacity, satQPS)

	// The latency budget for the admission-controlled arm: generous next
	// to the unloaded latency, tight next to an unbounded queue.
	budget := time.Duration(8 * p50 * float64(time.Millisecond))
	if budget < 20*time.Millisecond {
		budget = 20 * time.Millisecond
	}

	multipliers := []float64{0.5, 1, 1.5, 2, 3}
	goodput := Table{
		Title: "goodput vs offered load (open-loop, mix 50% exact / 50% sampled; srv = server-side /stats view)",
		Header: []string{"offered qps", "x capacity",
			"base good qps", "base srv p99 ms", "base srv p999 ms",
			"adm good qps", "adm shed", "adm srv p99 ms", "adm srv p999 ms"},
	}
	var (
		sBaseGood = Series{Name: "baseline goodput", XLabel: "offered qps", YLabel: "goodput qps"}
		sAdmGood  = Series{Name: "admission goodput", XLabel: "offered qps", YLabel: "goodput qps"}
		sBaseP99  = Series{Name: "baseline server p99", XLabel: "offered qps", YLabel: "p99 ms"}
		sAdmP99   = Series{Name: "admission server p99", XLabel: "offered qps", YLabel: "p99 ms"}
	)
	var lastBase, lastAdm loadgen.ServerStats
	var lastAdmRes loadgen.Result
	for _, m := range multipliers {
		rate := capacity * m
		lc := loadgen.Config{QPS: rate, Duration: runDur, Mix: sweepMix, ZipfS: 0}
		base, baseSrv, _, err := drive(serve.Options{}, lc)
		if err != nil {
			return nil, err
		}
		adm, admSrv, _, err := drive(serve.Options{LatencyBudget: budget}, lc)
		if err != nil {
			return nil, err
		}
		opts.logf("serving: %.1fx (%.0f qps): base good %.0f srv-p99 %.1fms | adm good %.0f shed %d srv-p99 %.1fms",
			m, rate, base.GoodputQPS, baseSrv.P99Millis, adm.GoodputQPS, adm.Shed, admSrv.P99Millis)
		goodput.Rows = append(goodput.Rows, []string{
			fmtF(rate, 0), fmtF(m, 1),
			fmtF(base.GoodputQPS, 1), fmtF(baseSrv.P99Millis, 2), fmtF(baseSrv.P999Millis, 2),
			fmtF(adm.GoodputQPS, 1), fmt.Sprintf("%d", adm.Shed),
			fmtF(admSrv.P99Millis, 2), fmtF(admSrv.P999Millis, 2),
		})
		sBaseGood.X, sBaseGood.Y = append(sBaseGood.X, rate), append(sBaseGood.Y, base.GoodputQPS)
		sAdmGood.X, sAdmGood.Y = append(sAdmGood.X, rate), append(sAdmGood.Y, adm.GoodputQPS)
		sBaseP99.X, sBaseP99.Y = append(sBaseP99.X, rate), append(sBaseP99.Y, baseSrv.P99Millis)
		sAdmP99.X, sAdmP99.Y = append(sAdmP99.X, rate), append(sAdmP99.Y, admSrv.P99Millis)
		lastBase, lastAdm, lastAdmRes = baseSrv, admSrv, adm
	}

	// Cache phase: Zipf-skewed cacheable traffic at capacity, cache off
	// vs on.
	cacheMix := loadgen.Mix{Exact: 0.45, Seeded: 0.45, Sampled: 0.1}
	cacheLC := loadgen.Config{QPS: capacity, Duration: runDur, Mix: cacheMix, ZipfS: 1.2}
	noCache, _, _, err := drive(serve.Options{}, cacheLC)
	if err != nil {
		return nil, err
	}
	withCache, cacheStats, _, err := drive(serve.Options{CacheSize: 4096}, cacheLC)
	if err != nil {
		return nil, err
	}
	hitRate := 0.0
	if tot := cacheStats.CacheHits + cacheStats.CacheMisses; tot > 0 {
		hitRate = float64(cacheStats.CacheHits) / float64(tot)
	}
	opts.logf("serving: cache off good %.0f p99 %.1fms | on good %.0f p99 %.1fms hit rate %.2f",
		noCache.GoodputQPS, noCache.P99Millis, withCache.GoodputQPS, withCache.P99Millis, hitRate)
	cacheTab := Table{
		Title:  "response cache under Zipf(1.2)-skewed cacheable mix at ~capacity",
		Header: []string{"cache", "good qps", "p50 ms", "p99 ms", "hits", "misses", "hit rate", "entries"},
		Rows: [][]string{
			{"off", fmtF(noCache.GoodputQPS, 1), fmtF(noCache.P50Millis, 2), fmtF(noCache.P99Millis, 2),
				"0", "0", "-", "0"},
			{"on", fmtF(withCache.GoodputQPS, 1), fmtF(withCache.P50Millis, 2), fmtF(withCache.P99Millis, 2),
				fmt.Sprintf("%d", cacheStats.CacheHits), fmt.Sprintf("%d", cacheStats.CacheMisses),
				fmtF(hitRate, 3), fmt.Sprintf("%d", cacheStats.CacheEntries)},
		},
	}

	// Memory phase (PR 9): identical capacity-rate traffic served by the
	// pooled allocation-free request path vs the allocate-per-request
	// ablation (Options.NoPooling reproduces the pre-pooling regime).
	// The GC delta is the before/after record the issue asks for: pause
	// p99, collections, and allocations per request at the same
	// operating point.
	memLC := loadgen.Config{QPS: capacity, Duration: runDur, Mix: sweepMix, ZipfS: 0}
	pooled, pooledSrv, pooledGC, err := drive(serve.Options{}, memLC)
	if err != nil {
		return nil, err
	}
	nopool, nopoolSrv, nopoolGC, err := drive(serve.Options{NoPooling: true}, memLC)
	if err != nil {
		return nil, err
	}
	opts.logf("serving: pooled gc-p99 %.3fms %.0f allocs/req | no-pool gc-p99 %.3fms %.0f allocs/req",
		pooledSrv.GCPauseP99Millis, pooledGC.AllocsPerRequest,
		nopoolSrv.GCPauseP99Millis, nopoolGC.AllocsPerRequest)
	memTab := Table{
		Title: "GC trajectory at ~capacity: pooled request path vs allocate-per-request ablation (whole-process alloc deltas)",
		Header: []string{"pooling", "good qps", "srv p99 ms", "gc pause p99 ms", "gc pause max ms",
			"collections", "allocs/req", "alloc KiB/req", "heap MiB"},
		Rows: [][]string{
			{"on", fmtF(pooled.GoodputQPS, 1), fmtF(pooledSrv.P99Millis, 2),
				fmtF(pooledSrv.GCPauseP99Millis, 3), fmtF(pooledSrv.GCPauseMaxMillis, 3),
				fmt.Sprintf("%d", pooledGC.Collections), fmtF(pooledGC.AllocsPerRequest, 1),
				fmtF(pooledGC.AllocBytesPerRequest/1024, 2), fmtF(float64(pooledSrv.HeapAllocBytes)/(1<<20), 1)},
			{"off", fmtF(nopool.GoodputQPS, 1), fmtF(nopoolSrv.P99Millis, 2),
				fmtF(nopoolSrv.GCPauseP99Millis, 3), fmtF(nopoolSrv.GCPauseMaxMillis, 3),
				fmt.Sprintf("%d", nopoolGC.Collections), fmtF(nopoolGC.AllocsPerRequest, 1),
				fmtF(nopoolGC.AllocBytesPerRequest/1024, 2), fmtF(float64(nopoolSrv.HeapAllocBytes)/(1<<20), 1)},
		},
	}

	rep := &Report{ID: "serving", Title: "Production load harness: tail latency under open-loop load"}
	rep.AddNote("workload %s (%d features, %d classes), %d training iterations, threads %d",
		w.ds.Name, w.ds.InputDim, w.ds.NumClasses, tc.Iterations, opts.Threads)
	rep.AddNote("unloaded p50 %.2fms; measured capacity ≈ %.0f good qps (saturating probe at %.0f offered)",
		unloaded.P50Millis, capacity, satQPS)
	rep.AddNote("admission latency budget %s (max(8×unloaded p50, 20ms)); shed = 429 + Retry-After", budget)
	rep.AddNote("at %.0fx capacity (server-side view): baseline p99 %.2fms vs admission p99 %.2fms (budget %.0fms, shed %d of %d sent)",
		multipliers[len(multipliers)-1], lastBase.P99Millis, lastAdm.P99Millis,
		float64(budget.Microseconds())/1000, lastAdmRes.Shed, lastAdmRes.Sent)
	rep.AddNote("client and server share one process and CPU set: client-observed percentiles include client-side scheduling; the server-side /stats percentiles (table) measure handler time from decode to reply")
	rep.AddNote("GC phase: allocation deltas are whole-process (client shares the process); the pooled row's allocs/req is dominated by the client — the server-side request path itself is pinned at 0 allocs/op by TestProcessPredictZeroAllocs")
	rep.Tables = append(rep.Tables, goodput, cacheTab, memTab)
	rep.Series = append(rep.Series, sBaseGood, sAdmGood, sBaseP99, sAdmP99)
	return rep, nil
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
