package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gpusim"
	"repro/internal/hashtable"
	"repro/internal/optim"
	"repro/internal/profiler"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Scalability with CPU cores (Fig. 9 / Fig. 13)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Core utilization of SLIDE vs the dense baseline (Table 2)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "CPU inefficiency (memory-boundedness proxy) vs threads (Fig. 6)",
		Run:   runFig6,
	})
}

// slideFLOPsPerIter estimates SLIDE's useful arithmetic per iteration from
// the measured mean active-set sizes: forward dot products plus the two
// backward passes over active weights, times 2 FLOPs per MAC, plus the
// lazy Adam updates on touched weights.
func slideFLOPsPerIter(meanActive []float64, hidden int, avgNNZ float64, batch int) float64 {
	// Layer 0 (hidden, fully active): fan-in = avgNNZ sparse features.
	// Layer 1 (output, sampled): fan-in = hidden.
	var macs float64
	macs += float64(hidden) * avgNNZ * 3
	macs += meanActive[len(meanActive)-1] * float64(hidden) * 3
	adam := 6 * (float64(hidden)*avgNNZ + meanActive[len(meanActive)-1]*float64(hidden))
	return float64(batch) * (2*macs + adam)
}

// runFixedIters trains a fresh SLIDE network and the dense baseline for a
// fixed iteration budget at the given thread count, returning per-system
// utilization and achieved FLOP rates.
type scalePoint struct {
	threads       int
	slideSec      float64
	denseSec      float64
	slideUtil     float64
	denseUtil     float64
	slideFLOPRate float64
	denseFLOPRate float64
}

func measureAt(opts Options, w *workload, threads int, iters int64) (scalePoint, error) {
	pt := scalePoint{threads: threads}

	net, err := core.NewNetwork(w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir))
	if err != nil {
		return pt, err
	}
	tc := w.trainConfig(opts, threads)
	tc.Iterations = iters
	tc.EvalEvery = 0
	sres, err := net.Train(w.ds.Train, w.ds.Test, tc)
	if err != nil {
		return pt, err
	}
	pt.slideSec = sres.Seconds
	pt.slideUtil = sres.Utilization
	stats := w.ds.Stats()
	if sres.Seconds > 0 {
		perIter := slideFLOPsPerIter(sres.MeanActive, 128, stats.AvgFeatures, tc.BatchSize)
		pt.slideFLOPRate = perIter * float64(sres.Iterations) / sres.Seconds
	}

	dnet, err := dense.New(dense.Config{
		InputDim: w.ds.InputDim, Hidden: []int{128}, Classes: w.ds.NumClasses, Seed: opts.Seed,
		Adam: optim.NewAdam(w.sc.LR),
	})
	if err != nil {
		return pt, err
	}
	dres, err := dnet.Train(w.ds.Train, w.ds.Test, dense.TrainConfig{
		BatchSize: tc.BatchSize, Iterations: iters, Threads: threads, Seed: opts.Seed,
	})
	if err != nil {
		return pt, err
	}
	pt.denseSec = dres.Seconds
	pt.denseUtil = dres.Utilization
	if dres.Seconds > 0 {
		pt.denseFLOPRate = dres.FLOPsPerIter * float64(dres.Iterations) / dres.Seconds
	}
	return pt, nil
}

func runFig9(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	sweep := opts.ThreadSweep
	if sweep == nil {
		sweep = defaultThreadSweep(opts.Threads, 1, 2, 4, 8, 16, 32, 44)
	}
	rep := &Report{ID: "fig9", Title: "Convergence time vs CPU cores"}
	rep.AddNote("paper sweeps 2..44 cores on a 44-core Xeon; this machine provides %d", opts.Threads)

	model := gpusim.V100()
	for _, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		// Fixed-work proxy for convergence time: the same iteration
		// budget at every thread count (the paper's curves measure time
		// to converge; with identical math per iteration the ratio
		// structure is the same).
		iters := int64(w.sc.Epochs) * int64(len(w.ds.Train)/w.batch)
		if iters > 300 {
			iters = 300
		}
		slideS := Series{Name: w.ds.Name + " slide", XLabel: "cores", YLabel: "seconds"}
		denseS := Series{Name: w.ds.Name + " tf-cpu", XLabel: "cores", YLabel: "seconds"}
		gpuS := Series{Name: w.ds.Name + " tf-gpu-sim", XLabel: "cores", YLabel: "seconds"}
		tab := Table{
			Title:  w.ds.Name + " training seconds for fixed work vs cores",
			Header: []string{"cores", "slide", "tf-cpu", "tf-gpu-sim", "slide speedup vs 1st", "tf-cpu speedup vs 1st"},
		}
		var first *scalePoint
		var gpuSec float64
		for _, th := range sweep {
			opts.logf("fig9: %s threads=%d", w.ds.Name, th)
			pt, err := measureAt(opts, w, th, iters)
			if err != nil {
				return nil, err
			}
			if first == nil {
				f := pt
				first = &f
				// The GPU does not depend on host cores: flat line.
				dnet, _ := dense.New(dense.Config{InputDim: w.ds.InputDim, Hidden: []int{128}, Classes: w.ds.NumClasses, Seed: opts.Seed})
				gpuSec = float64(iters) * model.SecondsPerIteration(dnet.FLOPsPerIteration(w.batch, w.ds.Stats().AvgFeatures))
			}
			slideS.X = append(slideS.X, float64(th))
			slideS.Y = append(slideS.Y, pt.slideSec)
			denseS.X = append(denseS.X, float64(th))
			denseS.Y = append(denseS.Y, pt.denseSec)
			gpuS.X = append(gpuS.X, float64(th))
			gpuS.Y = append(gpuS.Y, gpuSec)
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%d", th),
				fmtF(pt.slideSec, 2), fmtF(pt.denseSec, 2), fmtF(gpuSec, 2),
				fmtF(first.slideSec/pt.slideSec, 2), fmtF(first.denseSec/pt.denseSec, 2),
			})
		}
		// Fig. 13: ratio of each point to the best (max-core) time.
		ratioSlide := Series{Name: w.ds.Name + " slide ratio-to-min", XLabel: "cores", YLabel: "ratio"}
		ratioDense := Series{Name: w.ds.Name + " tf-cpu ratio-to-min", XLabel: "cores", YLabel: "ratio"}
		minSlide, minDense := minOf(slideS.Y), minOf(denseS.Y)
		for i := range slideS.X {
			ratioSlide.X = append(ratioSlide.X, slideS.X[i])
			ratioSlide.Y = append(ratioSlide.Y, slideS.Y[i]/minSlide)
			ratioDense.X = append(ratioDense.X, denseS.X[i])
			ratioDense.Y = append(ratioDense.Y, denseS.Y[i]/minDense)
		}
		rep.Series = append(rep.Series, slideS, denseS, gpuS, ratioSlide, ratioDense)
		rep.Tables = append(rep.Tables, tab)
	}
	return rep, nil
}

func runTable2(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	sweep := opts.ThreadSweep
	if sweep == nil {
		sweep = defaultThreadSweep(opts.Threads, 8, 16, 32)
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	iters := int64(100)

	rep := &Report{ID: "table2", Title: "Core utilization"}
	rep.AddNote("utilization = worker busy time / (wall time x threads); paper: TF-CPU 45/35/32%%, SLIDE 82/81/85%% at 8/16/32 threads")
	header := []string{"system"}
	for _, th := range sweep {
		header = append(header, fmt.Sprintf("%d threads", th))
	}
	tab := Table{Title: "core utilization", Header: header}
	slideRow := []string{"SLIDE"}
	denseRow := []string{"Dense (TF-CPU analog)"}
	for _, th := range sweep {
		opts.logf("table2: threads=%d", th)
		pt, err := measureAt(opts, w, th, iters)
		if err != nil {
			return nil, err
		}
		slideRow = append(slideRow, fmtF(pt.slideUtil*100, 0)+"%")
		denseRow = append(denseRow, fmtF(pt.denseUtil*100, 0)+"%")
	}
	tab.Rows = [][]string{denseRow, slideRow}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}

func runFig6(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	sweep := opts.ThreadSweep
	if sweep == nil {
		sweep = defaultThreadSweep(opts.Threads, 8, 16, 32)
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	iters := int64(100)

	rep := &Report{ID: "fig6", Title: "CPU usage inefficiencies (memory-boundedness proxy)"}
	rep.AddNote("substitution: VTune pipeline-slot attribution -> achieved/peak FLOP rate; 'memory bound' = 1 - achieved/peak at equal threads (see DESIGN.md)")
	tab := Table{
		Title: "inefficiency breakdown",
		Header: []string{"system", "threads", "utilization", "achieved GFLOP/s",
			"peak GFLOP/s", "memory-bound", "idle-bound"},
	}
	slideMB := Series{Name: "slide memory-bound", XLabel: "threads", YLabel: "fraction"}
	denseMB := Series{Name: "tf-cpu memory-bound", XLabel: "threads", YLabel: "fraction"}
	for _, th := range sweep {
		opts.logf("fig6: calibrating peak at %d threads", th)
		peak := profiler.CalibratePeak(th, 60*time.Millisecond)
		pt, err := measureAt(opts, w, th, iters)
		if err != nil {
			return nil, err
		}
		s := profiler.Analyze(th, pt.slideUtil, pt.slideFLOPRate, peak)
		d := profiler.Analyze(th, pt.denseUtil, pt.denseFLOPRate, peak)
		for _, row := range []struct {
			name string
			in   profiler.Inefficiency
		}{{"SLIDE", s}, {"Dense (TF-CPU analog)", d}} {
			tab.Rows = append(tab.Rows, []string{
				row.name, fmt.Sprintf("%d", th),
				fmtF(row.in.Utilization*100, 0) + "%",
				fmtF(row.in.AchievedGF, 2), fmtF(row.in.PeakGF, 2),
				fmtF(row.in.MemoryBound, 3), fmtF(row.in.IdleBound, 3),
			})
		}
		slideMB.X = append(slideMB.X, float64(th))
		slideMB.Y = append(slideMB.Y, s.MemoryBound)
		denseMB.X = append(denseMB.X, float64(th))
		denseMB.Y = append(denseMB.Y, d.MemoryBound)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Series = append(rep.Series, slideMB, denseMB)
	return rep, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
