package harness

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyOpts() Options {
	return Options{Scale: "tiny", Seed: 17, Log: io.Discard, ThreadSweep: []int{2, 4}}
}

// TestAllExperimentsRunAtTinyScale smoke-tests every registered
// table/figure reproduction end to end.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is seconds-long; skipped in -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %q != %q", rep.ID, e.ID)
			}
			if len(rep.Tables) == 0 && len(rep.Series) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			var buf bytes.Buffer
			rep.WriteText(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatalf("text output missing experiment id")
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{"abl-hash", "abl-rebuild", "abl-strategy", "abl-update", "dist-comm",
		"dist-train", "fig10", "fig11", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"kernels", "multicore", "rebuild", "serving", "table1", "table2", "table3", "table4", "tables"}
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q (sorted)", i, e.ID, want[i])
		}
	}
	if _, ok := Get("fig5"); !ok {
		t.Fatal("Get(fig5) missing")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) found")
	}
}

func TestScalePresets(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Fatalf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
		if sc.DatasetScale <= 0 || sc.DatasetScale > 1 {
			t.Fatalf("%s: bad dataset scale %v", name, sc.DatasetScale)
		}
	}
	if _, err := ScaleByName("giant"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestAutoRangePow(t *testing.T) {
	// Paper-scale Delicious with Simhash K=9: capped by the 9-bit code.
	if got := autoRangePow(205443, 9, 1); got != 9 {
		t.Fatalf("delicious rangePow = %d, want 9", got)
	}
	// Small populations shrink the table instead of starving retrieval.
	if got := autoRangePow(2048, 9, 3); got > 7 {
		t.Fatalf("small-population rangePow = %d, too sparse", got)
	}
	// Never below 4 or above 18.
	if got := autoRangePow(10, 9, 8); got < 4 {
		t.Fatalf("rangePow floor violated: %d", got)
	}
	if got := autoRangePow(1<<30, 9, 8); got > 18 {
		t.Fatalf("rangePow cap violated: %d", got)
	}
}

func TestReportCSVOutput(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{
		ID:     "x",
		Title:  "t",
		Tables: []Table{{Title: "a", Header: []string{"c1", "c2"}, Rows: [][]string{{"1", "2"}}}},
		Series: []Series{{Name: "s one", XLabel: "x", YLabel: "y", X: []float64{1}, Y: []float64{2}}},
	}
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("wrote %d files, want 2", len(files))
	}
	b, err := os.ReadFile(filepath.Join(dir, "x_table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); got != "c1,c2\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestWorkloadBeta(t *testing.T) {
	sc, _ := ScaleByName("paper")
	if b := betaFor(sc, 205443); b < 1000 || b > 1100 {
		t.Fatalf("paper-scale delicious beta = %d, expected ~1027 (0.5%%)", b)
	}
	if b := betaFor(sc, 10); b != 10 {
		t.Fatalf("beta should clamp to classes: %d", b)
	}
}
