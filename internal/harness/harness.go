// Package harness reproduces every table and figure of the paper's
// evaluation (§5, appendices B-E). Each experiment is a named runner that
// builds its workload at a chosen scale preset, executes SLIDE and the
// relevant baselines, and emits the same rows/series the paper reports,
// as text tables and optional CSV files.
//
// Scale presets trade fidelity for runtime: "tiny" and "small" finish in
// seconds (tests, benchmarks), "medium" in minutes (default for
// cmd/slide-bench), "paper" uses the published dimensions.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Options configures an experiment run.
type Options struct {
	// Scale names a preset: tiny, small, medium, paper.
	Scale string
	// Seed drives every stochastic component.
	Seed uint64
	// Threads is the worker count for single-thread-count experiments;
	// 0 selects GOMAXPROCS.
	Threads int
	// ThreadSweep overrides the thread counts used by scalability and
	// utilization experiments; nil selects a default sweep capped at
	// the machine's GOMAXPROCS.
	ThreadSweep []int
	// OutDir, when non-empty, receives one CSV file per table/series.
	OutDir string
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == "" {
		o.Scale = "small"
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	fmt.Fprintf(o.Log, format+"\n", args...)
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Series is one plottable line of a figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []Table
	Series []Series
	// Machine records the host the report was measured on; WriteJSON
	// stamps it automatically so committed BENCH_*.json trajectories are
	// always attributable to their hardware.
	Machine *MachineInfo `json:",omitempty"`
}

// AddNote appends a formatted note to the report.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the report as aligned text.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		writeAligned(w, t.Header, t.Rows)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n-- series %s (%s vs %s) --\n", s.Name, s.YLabel, s.XLabel)
		header := []string{s.XLabel, s.YLabel}
		rows := make([][]string, len(s.X))
		for i := range s.X {
			rows[i] = []string{fmtG(s.X[i]), fmtG(s.Y[i])}
		}
		writeAligned(w, header, rows)
	}
	fmt.Fprintln(w)
}

// WriteJSON writes the whole report as one indented JSON document — the
// machine-readable emitter behind slide-bench -json, used to record
// benchmark trajectories (e.g. BENCH_kernels.json) that successive PRs
// can diff.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Machine == nil {
		m := CurrentMachine()
		r.Machine = &m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes each table and series as a CSV file under dir.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range r.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", r.ID, i+1))
		if err := writeCSVFile(path, t.Header, t.Rows); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		rows := make([][]string, len(s.X))
		for i := range s.X {
			rows[i] = []string{fmtG(s.X[i]), fmtG(s.Y[i])}
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", r.ID, sanitize(s.Name)))
		if err := writeCSVFile(path, []string{s.XLabel, s.YLabel}, rows); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVFile(path string, header []string, rows [][]string) error {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func writeAligned(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[minI(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func fmtG(v float64) string { return fmt.Sprintf("%g", v) }

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments, sorted by id.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, writing text reports to w and CSVs to
// opts.OutDir when set. The first error aborts.
func RunAll(opts Options, w io.Writer) error {
	for _, e := range Experiments() {
		rep, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		rep.WriteText(w)
		if opts.OutDir != "" {
			if err := rep.WriteCSV(opts.OutDir); err != nil {
				return fmt.Errorf("%s: writing CSV: %w", e.ID, err)
			}
		}
	}
	return nil
}
