package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hashtable"
	"repro/internal/kernels"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "kernels",
		Title: "Density-adaptive kernel engine vs per-neuron hot path (MLSys'21 vectorization analog)",
		Run:   runKernels,
	})
}

// runKernels measures what the kernel engine buys on the paper's
// operating point: the Delicious workload trained and served once with
// the legacy per-neuron loops and once with the density-adaptive
// gather/scatter engine, identical seeds and schedules. Reported per
// mode: training-loop throughput, exact (full forward) evaluation
// throughput, sampled single-query latency, accuracy (the engine must
// not trade it away), and the engine's per-form decision counts — the
// density-regime breakdown behind the crossover. This experiment's JSON
// output (slide-bench -exp kernels -json BENCH_kernels.json) seeds the
// repo's performance trajectory.
func runKernels(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	iters := 2 * sc.EvalEvery
	const sampledQueries = 400

	type modeResult struct {
		name      string
		train     *core.TrainResult
		evalPerS  float64
		evalP1    float64
		sampledUS float64
	}
	run := func(name string, km core.KernelMode) (*modeResult, error) {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.Kernels = km
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		tc := w.trainConfig(opts, opts.Threads)
		tc.Iterations = iters
		tc.EvalEvery = 0
		opts.logf("kernels: %s training (%d iterations, threads=%d)", name, iters, opts.Threads)
		tr, err := net.Train(w.ds.Train, w.ds.Test, tc)
		if err != nil {
			return nil, err
		}

		evalN := min(len(w.ds.Test), sc.EvalSamples)
		t0 := core.Now()
		ev, err := net.Evaluate(w.ds.Test, evalN, opts.Threads, 1)
		if err != nil {
			return nil, err
		}
		evalSec := core.Now().Sub(t0).Seconds()

		pred, err := net.NewPredictor()
		if err != nil {
			return nil, err
		}
		nq := min(sampledQueries, len(w.ds.Test))
		t0 = core.Now()
		for q := 0; q < nq; q++ {
			if _, _, err := pred.PredictSampled(w.ds.Test[q].Features, 5); err != nil {
				return nil, err
			}
		}
		sampledSec := core.Now().Sub(t0).Seconds()

		r := &modeResult{
			name:      name,
			train:     tr,
			evalP1:    ev.P1,
			sampledUS: sampledSec / float64(nq) * 1e6,
		}
		if evalSec > 0 {
			r.evalPerS = float64(ev.N) / evalSec
		}
		opts.logf("kernels: %s train %.1f iter/s, eval %.0f ex/s, sampled %.0f µs/query, P@1=%.3f",
			name, float64(tr.Iterations)/tr.Seconds, r.evalPerS, r.sampledUS, ev.P1)
		return r, nil
	}

	legacy, err := run("legacy", core.KernelLegacy)
	if err != nil {
		return nil, err
	}
	kernel, err := run("kernel", core.KernelAuto)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "kernels", Title: "Forward/backward kernel engine: gather/scatter vs per-neuron"}
	rep.AddNote("workload %s (%d features, %d classes), %d iterations, batch %d, beta %d, threads %d",
		w.ds.Name, w.ds.InputDim, w.ds.NumClasses, iters, w.batch, w.beta, opts.Threads)
	rep.AddNote("legacy = pre-engine per-neuron loops; kernel = density-adaptive engine (scatter on the mirrored 128-wide hidden layer, sorted-gather with fused dot+bias+ReLU elsewhere)")

	inputDensity := meanInputDensity(w.ds.Train, w.ds.InputDim)
	rep.AddNote("mean input density %.4f%% (%.0f of %d features) — deep inside the scatter regime (gather/scatter crossover at %.0f%%)",
		100*inputDensity, inputDensity*float64(w.ds.InputDim), w.ds.InputDim, 100*kernels.DefaultScatterMaxDensity)

	perf := Table{
		Title:  "hot-path throughput",
		Header: []string{"Engine", "Train iter/s", "Train s", "Exact eval ex/s", "Sampled µs/query", "Final P@1", "Eval P@1"},
	}
	for _, r := range []*modeResult{legacy, kernel} {
		perf.Rows = append(perf.Rows, []string{
			r.name,
			fmtF(float64(r.train.Iterations)/r.train.Seconds, 2),
			fmtF(r.train.Seconds, 2),
			fmtF(r.evalPerS, 0),
			fmtF(r.sampledUS, 1),
			fmtF(r.train.FinalAcc, 3),
			fmtF(r.evalP1, 3),
		})
	}
	rep.Tables = append(rep.Tables, perf)

	forms := Table{
		Title:  "forward kernel forms (counts per (layer, element) pass)",
		Header: []string{"Engine", "gather", "scatter", "legacy"},
	}
	for _, r := range []*modeResult{legacy, kernel} {
		forms.Rows = append(forms.Rows, []string{
			r.name,
			fmt.Sprintf("%d", r.train.KernelForwards["gather"]),
			fmt.Sprintf("%d", r.train.KernelForwards["scatter"]),
			fmt.Sprintf("%d", r.train.KernelForwards["legacy"]),
		})
	}
	rep.Tables = append(rep.Tables, forms)

	if legacy.train.Seconds > 0 && kernel.train.Seconds > 0 {
		rep.AddNote("training speedup %.2fx, exact eval %.2fx, sampled query %.2fx",
			legacy.train.Seconds/kernel.train.Seconds,
			safeRatio(kernel.evalPerS, legacy.evalPerS),
			safeRatio(legacy.sampledUS, kernel.sampledUS))
	}
	return rep, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// meanInputDensity is the measured density the engine's crossover acts
// on: mean nonzeros per training example over the feature dimension.
func meanInputDensity(train []dataset.Example, dim int) float64 {
	if len(train) == 0 || dim == 0 {
		return 0
	}
	var nnz int64
	for i := range train {
		nnz += int64(len(train[i].Features.Idx))
	}
	return float64(nnz) / float64(len(train)) / float64(dim)
}
