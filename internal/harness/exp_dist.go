package harness

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hashtable"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "dist-train",
		Title: "Sharded data-parallel training over sparse-delta exchange (§6)",
		Run:   runDistTrain,
	})
}

// runDistTrain measures the §6 claim end to end instead of estimating
// it: 2-shard data-parallel runs over the real extract→compress→encode→
// merge→apply pipeline, against a single-process run with the same
// global batch. It reports convergence side by side and the *measured*
// encoded bytes each replica ships per iteration versus the dense
// parameter synchronization a non-sparse data-parallel trainer would
// need — across the negotiated wire formats (fp32, bf16, error-feedback
// top-k) and with the exchange either synchronous or hidden behind the
// next batch's forward pass (OverlapExchange).
//
// The run uses the distributed operating point the paper argues from:
// the active set at the published ~0.5% fraction and a small per-shard
// batch (Distributed SLIDE, arXiv:2201.12667, trains many low-bandwidth
// CPU nodes with modest local batches). Wide local batches would union
// their touched sets toward dense — the regime the dist-comm experiment
// quantifies.
func runDistTrain(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	const shards = 2
	// maxIters caps all runs at the same step budget: small batches at
	// large scales would otherwise derive tens of thousands of steps,
	// and the comparison needs equal global data volume.
	const maxIters = 3600
	// Error feedback trades early convergence speed for wire bytes — the
	// delayed mass behaves like momentum with a long horizon — so the
	// accuracy comparison needs runs near their plateau, not a short
	// transient: train 3x the scale's epoch budget.
	const epochMult = 3

	rep := &Report{ID: "dist-train", Title: "Data-parallel SLIDE over sparse-delta exchange"}
	rep.AddNote("sparse bytes are measured through the dist codec (varint ids + values in the negotiated wire format), not estimated; dense sync = 4 bytes x params per iteration")
	rep.AddNote("operating point: beta = max(32, 0.5%% of classes) (§5's active fraction), %d shards x a small per-shard batch (8 for Delicious, 4 for the wider-active Amazon task); the single-process baseline trains the same global batch", shards)
	rep.AddNote("exch blocked = time the training loop waited on the exchange barrier; exch hidden = exchange time that ran under the next batch's forward pass (overlap rows only)")
	tab := Table{
		Title: "2-shard variants vs single-process",
		Header: []string{"dataset", "system", "P@1", "seconds", "sparse up/iter", "merged down/iter",
			"dense sync/iter", "reduction", "exch blocked", "exch hidden"},
	}
	type variant struct {
		name     string
		compress core.DeltaCompression
		frac     float64
		overlap  bool
	}
	variants := []variant{
		{name: "fp32"},
		{name: "fp32+overlap", overlap: true},
		{name: "bf16", compress: core.CompressBF16},
		{name: "topk:0.20", compress: core.CompressTopK, frac: 0.20},
		{name: "topk:0.20+overlap", compress: core.CompressTopK, frac: 0.20, overlap: true},
	}
	// Per-shard batch: the low-bandwidth §6 regime — each touched output
	// row ships its full hidden-fan-in span, so the payload scales with
	// batch x active set, and the wider-active Amazon task keeps the
	// exchange small by running the smaller local batch (Distributed
	// SLIDE shrinks local batches as clusters widen for the same reason).
	perShards := []int{8, 4} // aligned with the workload list below
	for wi, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		perShard := perShards[wi]
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.Layers[1].Beta = max(32, w.ds.NumClasses/200)

		tc := w.trainConfig(opts, opts.Threads)
		// Let TrainSharded divide the machine across replicas (and the
		// 1-shard baseline take all of it): passing the resolved thread
		// count through would oversubscribe the sharded run 2x and skew
		// its seconds/exchange-share columns.
		tc.Threads = 0
		tc.BatchSize = shards * perShard
		epochs := epochMult * max(tc.Epochs, 1)
		tc.Iterations = int64(epochs) * int64((len(w.ds.Train)+tc.BatchSize-1)/tc.BatchSize)
		tc.Iterations = min(tc.Iterations, maxIters)
		single, err := dist.TrainSharded(context.Background(), cfg, w.ds.Train, w.ds.Test, tc, 1)
		if err != nil {
			return nil, err
		}
		opts.logf("dist-train: %s single-process P@1=%.3f", w.ds.Name, single.Results[0].FinalAcc)

		dense := float64(single.Nets[0].NumParams()) * 4
		srow := single.Results[0]
		tab.Rows = append(tab.Rows, []string{
			w.ds.Name, "single", fmtF(srow.FinalAcc, 3), fmtF(srow.Seconds, 2),
			"-", "-", humanBytes(dense), "-", "-", "-",
		})
		_, iterS := curveSeries(w.ds.Name+" single", srow.Curve.Points)
		rep.Series = append(rep.Series, iterS)

		// The acceptance trio this experiment certifies: topk bytes vs
		// fp32 bytes, topk accuracy vs fp32 accuracy, overlapped blocked
		// time vs synchronous blocked time.
		var fp32Up, fp32Acc, fp32BlockedS, topkUp, topkAcc, overlapBlockedS float64
		for _, v := range variants {
			vtc := tc
			vtc.BatchSize = perShard
			vtc.Compress = v.compress
			vtc.TopKFrac = v.frac
			vtc.OverlapExchange = v.overlap
			sharded, err := dist.TrainSharded(context.Background(), cfg, w.ds.Train, w.ds.Test, vtc, shards)
			if err != nil {
				return nil, err
			}
			drow := sharded.Results[0]
			st := sharded.Stats[0]
			opts.logf("dist-train: %s %d-shard %s P@1=%.3f", w.ds.Name, shards, v.name, drow.FinalAcc)
			up, down := st.BytesOutPerRound(), st.BytesInPerRound()
			blockedS := float64(drow.ExchangeNS) / 1e9
			hiddenS := float64(drow.ExchangeHiddenNS) / 1e9
			hidden := "-"
			if v.overlap {
				hidden = fmtF(hiddenS, 2) + "s"
			}
			tab.Rows = append(tab.Rows, []string{
				w.ds.Name, fmt.Sprintf("%d-shard %s", shards, v.name), fmtF(drow.FinalAcc, 3), fmtF(drow.Seconds, 2),
				humanBytes(up), humanBytes(down), humanBytes(dense),
				fmtF(dense/math.Max(up, 1), 0) + "x", fmtF(blockedS, 2) + "s", hidden,
			})
			switch v.name {
			case "fp32":
				fp32Up, fp32Acc, fp32BlockedS = up, drow.FinalAcc, blockedS
			case "fp32+overlap":
				overlapBlockedS = blockedS
			case "topk:0.20":
				topkUp, topkAcc = up, drow.FinalAcc
			}
			if v.name == "fp32" || v.name == "topk:0.20" {
				_, iterD := curveSeries(fmt.Sprintf("%s %d-shard %s", w.ds.Name, shards, v.name), drow.Curve.Points)
				rep.Series = append(rep.Series, iterD)
			}
		}
		rep.AddNote("%s acceptance: topk:0.20 ships %.1fx fewer bytes/iter than fp32 (%.0f vs %.0f B); ΔP@1 topk-fp32 = %+.3f, topk-single = %+.3f; overlap blocked exchange = %.0f%% of synchronous (%.2fs vs %.2fs)",
			w.ds.Name, fp32Up/math.Max(topkUp, 1), topkUp, fp32Up,
			topkAcc-fp32Acc, topkAcc-single.Results[0].FinalAcc,
			100*overlapBlockedS/math.Max(fp32BlockedS, 1e-9), overlapBlockedS, fp32BlockedS)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("the reduction grows with model size: the dense payload scales with params while the sparse delta scales with batch x active set; at tiny scales the two are close and the exchange is uninteresting")
	return rep, nil
}
