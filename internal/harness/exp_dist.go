package harness

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/hashtable"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "dist-train",
		Title: "Sharded data-parallel training over sparse-delta exchange (§6)",
		Run:   runDistTrain,
	})
}

// runDistTrain measures the §6 claim end to end instead of estimating
// it: a 2-shard data-parallel run over the real extract→encode→merge→
// apply pipeline, against a single-process run with the same global
// batch. It reports convergence side by side and the *measured* encoded
// bytes each replica ships per iteration versus the dense parameter
// synchronization a non-sparse data-parallel trainer would need.
//
// The run uses the distributed operating point the paper argues from:
// the active set at the published ~0.5% fraction and a small per-shard
// batch (Distributed SLIDE, arXiv:2201.12667, trains many low-bandwidth
// CPU nodes with modest local batches). Wide local batches would union
// their touched sets toward dense — the regime the dist-comm experiment
// quantifies.
func runDistTrain(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	const shards = 2
	// maxIters caps both runs at the same step budget: small batches at
	// large scales would otherwise derive tens of thousands of steps,
	// and the comparison needs equal global data volume, not full
	// convergence.
	const maxIters = 1200

	rep := &Report{ID: "dist-train", Title: "Data-parallel SLIDE over sparse-delta exchange"}
	rep.AddNote("sparse bytes are measured through the dist codec (varint ids + float32 values), not estimated; dense sync = 4 bytes x params per iteration")
	rep.AddNote("operating point: beta = max(32, 0.5%% of classes) (§5's active fraction), %d shards x a small per-shard batch (8 for Delicious, 4 for the wider-active Amazon task); the single-process baseline trains the same global batch", shards)
	tab := Table{
		Title: "2-shard vs single-process",
		Header: []string{"dataset", "system", "P@1", "seconds", "sparse up/iter", "merged down/iter",
			"dense sync/iter", "reduction", "exchange time"},
	}
	// Per-shard batch: the low-bandwidth §6 regime — each touched output
	// row ships its full hidden-fan-in span, so the payload scales with
	// batch x active set, and the wider-active Amazon task keeps the
	// exchange small by running the smaller local batch (Distributed
	// SLIDE shrinks local batches as clusters widen for the same reason).
	perShards := []int{8, 4} // aligned with the workload list below
	for wi, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		perShard := perShards[wi]
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.Layers[1].Beta = max(32, w.ds.NumClasses/200)

		tc := w.trainConfig(opts, opts.Threads)
		// Let TrainSharded divide the machine across replicas (and the
		// 1-shard baseline take all of it): passing the resolved thread
		// count through would oversubscribe the sharded run 2x and skew
		// its seconds/exchange-share columns.
		tc.Threads = 0
		tc.BatchSize = shards * perShard
		epochs := max(tc.Epochs, 1)
		tc.Iterations = int64(epochs) * int64((len(w.ds.Train)+tc.BatchSize-1)/tc.BatchSize)
		tc.Iterations = min(tc.Iterations, maxIters)
		single, err := dist.TrainSharded(context.Background(), cfg, w.ds.Train, w.ds.Test, tc, 1)
		if err != nil {
			return nil, err
		}
		opts.logf("dist-train: %s single-process P@1=%.3f", w.ds.Name, single.Results[0].FinalAcc)

		tc.BatchSize = perShard
		sharded, err := dist.TrainSharded(context.Background(), cfg, w.ds.Train, w.ds.Test, tc, shards)
		if err != nil {
			return nil, err
		}
		opts.logf("dist-train: %s %d-shard P@1=%.3f", w.ds.Name, shards, sharded.Results[0].FinalAcc)

		dense := float64(single.Nets[0].NumParams()) * 4
		srow := single.Results[0]
		tab.Rows = append(tab.Rows, []string{
			w.ds.Name, "single", fmtF(srow.FinalAcc, 3), fmtF(srow.Seconds, 2),
			"-", "-", humanBytes(dense), "-", "-",
		})
		drow := sharded.Results[0]
		st := sharded.Stats[0]
		up, down := st.BytesOutPerRound(), st.BytesInPerRound()
		exchShare := float64(drow.ExchangeNS) / 1e9 / math.Max(drow.Seconds, 1e-9)
		tab.Rows = append(tab.Rows, []string{
			w.ds.Name, fmt.Sprintf("%d-shard", shards), fmtF(drow.FinalAcc, 3), fmtF(drow.Seconds, 2),
			humanBytes(up), humanBytes(down), humanBytes(dense),
			fmtF(dense/math.Max(up, 1), 0) + "x", fmtF(100*exchShare, 0) + "%",
		})
		rep.AddNote("%s: |ΔP@1| = %.3f between single and %d-shard; replicas end bit-identical by construction (shared merged delta)",
			w.ds.Name, math.Abs(srow.FinalAcc-drow.FinalAcc), shards)

		_, iterS := curveSeries(w.ds.Name+" single", srow.Curve.Points)
		rep.Series = append(rep.Series, iterS)
		_, iterD := curveSeries(fmt.Sprintf("%s %d-shard", w.ds.Name, shards), drow.Curve.Points)
		rep.Series = append(rep.Series, iterD)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("the reduction grows with model size: the dense payload scales with params while the sparse delta scales with batch x active set; at tiny scales the two are close and the exchange is uninteresting")
	return rep, nil
}
