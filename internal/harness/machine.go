package harness

import (
	"os"
	"runtime"
	"strings"
)

// MachineInfo identifies the hardware and toolchain a benchmark JSON was
// recorded on. Committed trajectories (BENCH_*.json) are only comparable
// point-to-point when this block matches; the paper's numbers come from a
// 44-core Xeon E5-2699A, and scaling results especially are meaningless
// without the core count attached.
type MachineInfo struct {
	CPUModel   string
	Cores      int
	GOMAXPROCS int
	GoVersion  string
	OS         string
	Arch       string
}

// CurrentMachine probes the running host.
func CurrentMachine() MachineInfo {
	return MachineInfo{
		CPUModel:   cpuModel(),
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// cpuModel extracts the CPU model string from /proc/cpuinfo; other
// platforms (or restricted environments) report "unknown".
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return "unknown"
}
