package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "rebuild",
		Title: "Rebuild stall: stop-the-world vs background shadow build (§4.2 analog)",
		Run:   runRebuild,
	})
}

// runRebuild quantifies what the non-blocking table lifecycle buys: it
// trains the Delicious workload twice with an aggressive rebuild schedule
// — once with synchronous (stop-the-world) reconstructions, once with the
// default background shadow builds — and reports how long the training
// loop was actually blocked per rebuild in each mode, next to the build
// time that overlapped with training. This is the Table 3 ("Updating
// Overhead") analog for the lifecycle itself: the paper amortizes
// rebuild cost by scheduling rebuilds rarely; the async lifecycle
// additionally shrinks the blocked time to the batch-boundary snapshot
// copy.
func runRebuild(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}

	const rebuildN0 = 10
	run := func(sync bool) (*core.TrainResult, error) {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.RebuildN0 = rebuildN0
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		tc := w.trainConfig(opts, opts.Threads)
		tc.Iterations = 8 * rebuildN0 // enough boundaries for several rebuilds
		tc.EvalEvery = 0
		tc.SyncRebuild = sync
		return net.Train(w.ds.Train, w.ds.Test, tc)
	}

	opts.logf("rebuild: %s, %d iterations, N0=%d, threads=%d", w.ds.Name, 8*rebuildN0, rebuildN0, opts.Threads)
	opts.logf("rebuild: synchronous (stop-the-world) pass")
	syncRes, err := run(true)
	if err != nil {
		return nil, err
	}
	opts.logf("rebuild: asynchronous (background shadow) pass")
	asyncRes, err := run(false)
	if err != nil {
		return nil, err
	}

	perRebuildMS := func(ns int64, rebuilds int) float64 {
		if rebuilds == 0 {
			return 0
		}
		return float64(ns) / float64(rebuilds) / 1e6
	}
	stallFrac := func(r *core.TrainResult) float64 {
		if r.Seconds <= 0 {
			return 0
		}
		return float64(r.RebuildStallNS) / 1e9 / r.Seconds * 100
	}

	rep := &Report{ID: "rebuild", Title: "Training-loop blocking per hash-table rebuild"}
	rep.AddNote("workload %s, %d iterations, rebuild N0=%d; 'stall' is time the training loop was blocked on table maintenance, 'overlapped build' ran on a background goroutine while batches continued", w.ds.Name, 8*rebuildN0, rebuildN0)
	tab := Table{
		Title:  "lifecycle comparison",
		Header: []string{"Mode", "Rebuilds", "Stall / rebuild", "Overlapped build / rebuild", "Stall % of train", "Final P@1"},
	}
	for _, row := range []struct {
		name string
		res  *core.TrainResult
	}{
		{"sync (stop-the-world)", syncRes},
		{"async (shadow + swap)", asyncRes},
	} {
		r := row.res
		tab.Rows = append(tab.Rows, []string{
			row.name,
			fmt.Sprintf("%d", r.Rebuilds),
			fmt.Sprintf("%.3f ms", perRebuildMS(r.RebuildStallNS, r.Rebuilds)),
			fmt.Sprintf("%.3f ms", perRebuildMS(r.RebuildBuildNS, r.Rebuilds)),
			fmt.Sprintf("%.2f%%", stallFrac(r)),
			fmt.Sprintf("%.3f", r.FinalAcc),
		})
		opts.logf("rebuild: %-22s rebuilds=%d stall/rebuild=%.3fms overlapped=%.3fms",
			row.name, r.Rebuilds, perRebuildMS(r.RebuildStallNS, r.Rebuilds), perRebuildMS(r.RebuildBuildNS, r.Rebuilds))
	}
	if syncRes.Rebuilds > 0 && asyncRes.Rebuilds > 0 && asyncRes.RebuildStallNS > 0 {
		ratio := (float64(syncRes.RebuildStallNS) / float64(syncRes.Rebuilds)) /
			(float64(asyncRes.RebuildStallNS) / float64(asyncRes.Rebuilds))
		rep.AddNote("per-rebuild loop blocking reduced %.1fx by the background lifecycle", ratio)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}
