package harness

import (
	"runtime"
	"sync"
)

// parallelChunks runs f over contiguous spans of [0, n) on GOMAXPROCS
// goroutines.
func parallelChunks(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
