package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
)

// ScaleSpec fixes the workload dimensions and hyperparameters of one
// preset. The paper's settings (§5 "Hyper Parameters") are reproduced at
// scale "paper"; smaller presets shrink the datasets and table counts
// proportionally so every experiment keeps the same structure.
type ScaleSpec struct {
	Name string
	// DatasetScale multiplies the Table 1 dimensions.
	DatasetScale float64
	// Epochs bounds training length for convergence experiments.
	Epochs int
	// EvalEvery and EvalSamples control curve resolution.
	EvalEvery   int64
	EvalSamples int
	// K, L and BetaFrac size the LSH machinery; Beta is
	// max(32, BetaFrac*classes), approximating the paper's ~0.5% active
	// neurons.
	K, L     int
	BetaFrac float64
	// LR is the Adam step size, shared by SLIDE and every baseline. The
	// paper tunes it in [1e-5, 1e-3]; wider output layers need smaller
	// steps for the sparse softmax to stay stable near convergence.
	LR float32
}

// Scales lists the available presets.
func Scales() []ScaleSpec {
	return []ScaleSpec{
		{Name: "tiny", DatasetScale: 0.004, Epochs: 4, EvalEvery: 25, EvalSamples: 256, K: 5, L: 12, BetaFrac: 0.08, LR: 1e-3},
		{Name: "small", DatasetScale: 0.01, Epochs: 4, EvalEvery: 40, EvalSamples: 512, K: 6, L: 20, BetaFrac: 0.05, LR: 1e-3},
		{Name: "medium", DatasetScale: 0.1, Epochs: 3, EvalEvery: 60, EvalSamples: 1024, K: 8, L: 50, BetaFrac: 0.02, LR: 3e-4},
		// The paper's settings: Simhash K=9 (Delicious) / DWTA K=8
		// (Amazon), L=50, ~1000 and ~3000 active neurons.
		{Name: "paper", DatasetScale: 1, Epochs: 2, EvalEvery: 200, EvalSamples: 2048, K: 9, L: 50, BetaFrac: 0.005, LR: 1e-4},
	}
}

// ScaleByName resolves a preset.
func ScaleByName(name string) (ScaleSpec, error) {
	for _, s := range Scales() {
		if s.Name == name {
			return s, nil
		}
	}
	return ScaleSpec{}, fmt.Errorf("harness: unknown scale %q (want tiny|small|medium|paper)", name)
}

// workload bundles one dataset with its SLIDE hyperparameters.
type workload struct {
	ds    *dataset.Dataset
	sc    ScaleSpec
	hash  lsh.Kind
	k     int
	batch int
	beta  int
}

// deliciousWorkload builds the Delicious-200K task at the preset scale:
// Simhash K=9 (paper §5), batch 128.
func deliciousWorkload(opts Options, sc ScaleSpec) (*workload, error) {
	ds, err := dataset.Generate(dataset.Delicious200K(sc.DatasetScale, opts.Seed))
	if err != nil {
		return nil, err
	}
	k := sc.K
	if sc.Name == "paper" {
		k = 9
	}
	return &workload{ds: ds, sc: sc, hash: lsh.KindSimhash, k: k, batch: 128, beta: betaFor(sc, ds.NumClasses)}, nil
}

// amazonWorkload builds the Amazon-670K task: DWTA K=8 (paper §5),
// batch 256.
func amazonWorkload(opts Options, sc ScaleSpec) (*workload, error) {
	ds, err := dataset.Generate(dataset.Amazon670K(sc.DatasetScale, opts.Seed))
	if err != nil {
		return nil, err
	}
	k := sc.K
	if sc.Name == "paper" {
		k = 8
	}
	return &workload{ds: ds, sc: sc, hash: lsh.KindDWTA, k: k, batch: 256, beta: betaFor(sc, ds.NumClasses)}, nil
}

func betaFor(sc ScaleSpec, classes int) int {
	beta := int(sc.BetaFrac * float64(classes))
	if beta < 32 {
		beta = 32
	}
	if beta > classes {
		beta = classes
	}
	return beta
}

// slideConfig builds the paper's architecture (one hidden layer of 128,
// hash tables on the output layer, §5 "Hyper Parameters") for a workload.
func (w *workload) slideConfig(opts Options, strategy sampling.Kind, policy hashtable.Policy) core.Config {
	return core.Config{
		InputDim: w.ds.InputDim,
		Seed:     opts.Seed,
		Adam:     optim.NewAdam(w.sc.LR),
		Layers: []core.LayerConfig{
			{Size: 128, Activation: core.ActReLU},
			{
				Size:       w.ds.NumClasses,
				Activation: core.ActSoftmax,
				Sampled:    true,
				Hash:       w.hash,
				K:          w.k,
				L:          w.sc.L,
				RangePow:   autoRangePow(w.ds.NumClasses, w.k, codeBitsFor(w.hash)),
				Policy:     policy,
				Strategy:   strategy,
				Beta:       w.beta,
				MinCount:   2,
			},
		},
		RebuildN0: 50, // paper: initial update period N0 = 50 iterations
	}
}

// autoRangePow sizes the per-table bucket count so that the expected
// occupancy stays around 32 neurons per bucket regardless of scale: with
// too many buckets for the neuron population, retrieval starves (almost
// every bucket is empty); with too few, buckets saturate and sampling
// degenerates toward uniform. Capped by the code width K*codeBits (a
// packed address cannot exceed it) and the reference implementation's
// range of 2^18.
func autoRangePow(neurons, k, codeBits int) int {
	rp := 0
	for 1<<(rp+1) <= neurons/32 {
		rp++
	}
	if rp < 4 {
		rp = 4
	}
	if rp > 18 {
		rp = 18
	}
	if kb := k * codeBits; kb < rp {
		rp = kb
	}
	return rp
}

// codeBitsFor mirrors each family's CodeBits for table sizing: Simhash
// emits sign bits, WTA/DWTA emit log2(binSize)=3-bit codes, DOPH emits
// 8-bit minhash codes.
func codeBitsFor(kind lsh.Kind) int {
	switch kind {
	case lsh.KindSimhash:
		return 1
	case lsh.KindWTA, lsh.KindDWTA:
		return 3
	case lsh.KindDOPH:
		return 8
	default:
		return 1
	}
}

// trainConfig builds the shared trainer settings.
func (w *workload) trainConfig(opts Options, threads int) core.TrainConfig {
	return core.TrainConfig{
		BatchSize:   w.batch,
		Epochs:      w.sc.Epochs,
		Threads:     threads,
		EvalEvery:   w.sc.EvalEvery,
		EvalSamples: w.sc.EvalSamples,
		Seed:        opts.Seed,
	}
}

// defaultThreadSweep returns the utilization/scalability thread counts
// capped at the machine size. The paper sweeps 2..44 on a 44-core box.
func defaultThreadSweep(maxThreads int, counts ...int) []int {
	var out []int
	for _, c := range counts {
		if c <= maxThreads {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != maxThreads {
		out = append(out, maxThreads)
	}
	return out
}

// curveSeries converts a metrics curve into time- and iteration-axis
// series for a figure.
func curveSeries(name string, pts []core.Point) (timeS, iterS Series) {
	timeS = Series{Name: name + " (time)", XLabel: "seconds", YLabel: "p@1"}
	iterS = Series{Name: name + " (iterations)", XLabel: "iterations", YLabel: "p@1"}
	for _, p := range pts {
		timeS.X = append(timeS.X, p.Seconds)
		timeS.Y = append(timeS.Y, p.Value)
		iterS.X = append(iterS.X, float64(p.Iter))
		iterS.Y = append(iterS.Y, p.Value)
	}
	return timeS, iterS
}
