package harness

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hashtable"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "dist-comm",
		Title: "Distributed SLIDE communication volume (§6 future work)",
		Run:   runDistComm,
	})
	register(Experiment{
		ID:    "abl-rebuild",
		Title: "Hash table rebuild schedule ablation (§4.2)",
		Run:   runAblRebuild,
	})
}

// runDistComm quantifies the paper's closing claim — "a distributed
// implementation of SLIDE would be very appealing because the
// communication costs are minimal due to sparse gradients" — with the
// real pipeline: training runs through a single-shard loopback exchanger
// (bit-identical to a plain run), so every batch's SparseDelta passes
// through the dist codec and its encoded size is *measured*. The old
// 8-bytes-per-cell estimate is kept alongside as validation, against the
// dense full-gradient synchronization (4 bytes per parameter).
func runDistComm(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "dist-comm", Title: "Per-iteration gradient communication volume"}
	rep.AddNote("measured = encoded SparseDelta bytes through the dist codec (varint ids + values in the negotiated format); estimate = touched cells x 8 bytes (index+fp32 value); dense = all parameters x 4 bytes; topk rows ship the largest-|g| 10%% with error feedback, so touched cells/iter counts post-selection cells")
	tab := Table{
		Title: "gradient payload per iteration",
		Header: []string{"dataset", "compress", "params", "touched cells/iter", "measured codec", "8 B/cell estimate",
			"measured/estimate", "batch-sync dense", "reduction", "per-element async", "async reduction"},
	}
	formats := []struct {
		name     string
		compress core.DeltaCompression
		frac     float64
	}{
		{"fp32", core.CompressFP32, 0},
		{"bf16", core.CompressBF16, 0},
		{"topk:0.10", core.CompressTopK, 0.10},
	}
	for _, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		for _, f := range formats {
			cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
			tc := w.trainConfig(opts, opts.Threads)
			tc.Iterations = 50
			tc.EvalEvery = 0
			tc.Compress = f.compress
			tc.TopKFrac = f.frac
			opts.logf("dist-comm: %s %s", w.ds.Name, f.name)
			run, err := dist.TrainSharded(context.Background(), cfg, w.ds.Train, w.ds.Test, tc, 1)
			if err != nil {
				return nil, err
			}
			res := run.Results[0]
			params := run.Nets[0].NumParams()
			measured := run.Stats[0].BytesOutPerRound()
			estBytes := res.TouchedPerIter * 8
			denseBytes := float64(params) * 4
			// The paper's asynchronous design ships each element's update as
			// it happens: active output neurons x (hidden fan-in + bias)
			// cells, independent of how the batch's active sets union.
			perElem := res.MeanActive[len(res.MeanActive)-1] * float64(128+1) * 8
			tab.Rows = append(tab.Rows, []string{
				w.ds.Name,
				f.name,
				fmt.Sprintf("%d", params),
				fmtF(res.TouchedPerIter, 0),
				humanBytes(measured),
				humanBytes(estBytes),
				fmtF(measured/estBytes, 2),
				humanBytes(denseBytes),
				fmtF(denseBytes/measured, 1) + "x",
				humanBytes(perElem),
				fmtF(denseBytes/perElem, 0) + "x",
			})
		}
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("batch-synchronous exchange ships the union of the batch's touched cells, which saturates for wide batches (the varint codec beating the 8 B/cell estimate notwithstanding); small per-shard batches or the paper's per-element pushes (last two columns) keep the payload at activeNeurons x fanIn cells — the regime behind the §6 claim, measured end to end by dist-train")
	return rep, nil
}

// runAblRebuild compares the §4.2 exponential-decay rebuild schedule
// against fixed-period rebuilds and against never rebuilding — the
// design-choice ablation DESIGN.md calls out.
func runAblRebuild(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "abl-rebuild", Title: "Rebuild schedule ablation"}
	tab := Table{
		Title:  "schedule comparison",
		Header: []string{"schedule", "rebuilds", "final P@1", "best P@1", "seconds"},
	}
	type schedule struct {
		name   string
		n0     int
		lambda float64
	}
	for _, s := range []schedule{
		{"exponential (N0=50, λ=0.1)", 50, 0.1},
		{"fixed period 50", 50, 1e-9},
		{"never", 1 << 30, 1},
	} {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.RebuildN0 = s.n0
		cfg.RebuildLambda = s.lambda
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		opts.logf("abl-rebuild: %s", s.name)
		res, err := net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		if err != nil {
			return nil, err
		}
		_, iterS := curveSeries(s.name, res.Curve.Points)
		rep.Series = append(rep.Series, iterS)
		tab.Rows = append(tab.Rows, []string{
			s.name, fmt.Sprintf("%d", res.Rebuilds),
			fmtF(res.FinalAcc, 3), fmtF(res.Curve.Best(), 3), fmtF(res.Seconds, 2),
		})
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("§4.2's intuition: early gradients are large (tables stale quickly), late gradients small (rebuilds can thin out); 'never' keeps sampling from initial weights")
	return rep, nil
}

func humanBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmtF(b/(1<<30), 2) + " GiB"
	case b >= 1<<20:
		return fmtF(b/(1<<20), 2) + " MiB"
	case b >= 1<<10:
		return fmtF(b/(1<<10), 2) + " KiB"
	default:
		return fmtF(b, 0) + " B"
	}
}
