package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "dist-comm",
		Title: "Distributed SLIDE communication volume (§6 future work)",
		Run:   runDistComm,
	})
	register(Experiment{
		ID:    "abl-rebuild",
		Title: "Hash table rebuild schedule ablation (§4.2)",
		Run:   runAblRebuild,
	})
}

// runDistComm quantifies the paper's closing claim — "a distributed
// implementation of SLIDE would be very appealing because the
// communication costs are minimal due to sparse gradients" — by
// measuring the touched-weight payload a data-parallel replica would
// ship per iteration (index + value, 8 bytes per cell) against the dense
// full-gradient synchronization (4 bytes per parameter), for SLIDE and
// for the dense baseline on the same tasks.
func runDistComm(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "dist-comm", Title: "Per-iteration gradient communication volume"}
	rep.AddNote("sparse payload = touched weight cells x 8 bytes (index+value); dense payload = all parameters x 4 bytes")
	tab := Table{
		Title: "gradient payload per iteration",
		Header: []string{"dataset", "params", "touched cells/iter", "batch-sync sparse",
			"batch-sync dense", "reduction", "per-element async", "async reduction"},
	}
	for _, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		net, err := core.NewNetwork(w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir))
		if err != nil {
			return nil, err
		}
		tc := w.trainConfig(opts, opts.Threads)
		tc.Iterations = 50
		tc.EvalEvery = 0
		opts.logf("dist-comm: %s", w.ds.Name)
		res, err := net.Train(w.ds.Train, w.ds.Test, tc)
		if err != nil {
			return nil, err
		}
		params := net.NumParams()
		sparseBytes := res.TouchedPerIter * 8
		denseBytes := float64(params) * 4
		// The paper's asynchronous design ships each element's update as
		// it happens: active output neurons x (hidden fan-in + bias)
		// cells, independent of how the batch's active sets union.
		perElem := res.MeanActive[len(res.MeanActive)-1] * float64(128+1) * 8
		tab.Rows = append(tab.Rows, []string{
			w.ds.Name,
			fmt.Sprintf("%d", params),
			fmtF(res.TouchedPerIter, 0),
			humanBytes(sparseBytes),
			humanBytes(denseBytes),
			fmtF(denseBytes/sparseBytes, 1) + "x",
			humanBytes(perElem),
			fmtF(denseBytes/perElem, 0) + "x",
		})
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("batch-synchronous exchange ships the union of the batch's touched cells, which saturates for wide batches; the paper's asynchronous per-element pushes (last two columns) keep the payload at activeNeurons x fanIn cells regardless of batch size — the regime behind the §6 claim")
	return rep, nil
}

// runAblRebuild compares the §4.2 exponential-decay rebuild schedule
// against fixed-period rebuilds and against never rebuilding — the
// design-choice ablation DESIGN.md calls out.
func runAblRebuild(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "abl-rebuild", Title: "Rebuild schedule ablation"}
	tab := Table{
		Title:  "schedule comparison",
		Header: []string{"schedule", "rebuilds", "final P@1", "best P@1", "seconds"},
	}
	type schedule struct {
		name   string
		n0     int
		lambda float64
	}
	for _, s := range []schedule{
		{"exponential (N0=50, λ=0.1)", 50, 0.1},
		{"fixed period 50", 50, 1e-9},
		{"never", 1 << 30, 1},
	} {
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.RebuildN0 = s.n0
		cfg.RebuildLambda = s.lambda
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		opts.logf("abl-rebuild: %s", s.name)
		res, err := net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		if err != nil {
			return nil, err
		}
		_, iterS := curveSeries(s.name, res.Curve.Points)
		rep.Series = append(rep.Series, iterS)
		tab.Rows = append(tab.Rows, []string{
			s.name, fmt.Sprintf("%d", res.Rebuilds),
			fmtF(res.FinalAcc, 3), fmtF(res.Curve.Best(), 3), fmtF(res.Seconds, 2),
		})
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("§4.2's intuition: early gradients are large (tables stale quickly), late gradients small (rebuilds can thin out); 'never' keeps sampling from initial weights")
	return rep, nil
}

func humanBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmtF(b/(1<<30), 2) + " GiB"
	case b >= 1<<20:
		return fmtF(b/(1<<20), 2) + " MiB"
	case b >= 1<<10:
		return fmtF(b/(1<<10), 2) + " KiB"
	default:
		return fmtF(b, 0) + " B"
	}
}
