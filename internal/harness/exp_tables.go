package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/profiler"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Hash table insertion policy timing (Table 3)",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Memory layout (hugepage analog) counter metrics (Table 4)",
		Run:   runTable4,
	})
}

// runTable3 times inserting the whole Delicious output layer (205,443
// neurons at scale 1) into the hash tables under reservoir sampling vs
// FIFO, splitting the hash-code computation ("Full Insertion" includes
// it, "Insertion to HT" excludes it), as App. C.2 does.
func runTable3(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	neurons := maxI(1024, int(205443*sc.DatasetScale))
	k, l := sc.K, sc.L
	opts.logf("table3: hashing %d neurons (K=%d, L=%d)", neurons, k, l)

	hashStart := time.Now()
	bench, err := newStrategyBench(neurons, k, l, opts.Seed)
	if err != nil {
		return nil, err
	}
	hashTime := time.Since(hashStart)

	rep := &Report{ID: "table3", Title: "Time taken by hash table insertion schemes"}
	rep.AddNote("%d neurons, Simhash K=%d L=%d; 'Full Insertion' includes hash-code computation, threads=%d", neurons, k, l, opts.Threads)
	tab := Table{Title: "insertion timing", Header: []string{"Policy", "Insertion to HT", "Full Insertion"}}
	for _, policy := range []hashtable.Policy{hashtable.PolicyReservoir, hashtable.PolicyFIFO} {
		_, insertTime, err := bench.buildTables(k, l, policy, opts.Seed, opts.Threads)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			policy.String(),
			fmt.Sprintf("%.3f s", insertTime.Seconds()),
			fmt.Sprintf("%.3f s", (hashTime + insertTime).Seconds()),
		})
		opts.logf("table3: %s insert=%.3fs full=%.3fs", policy, insertTime.Seconds(), (hashTime + insertTime).Seconds())
	}
	tab.Rows = append(tab.Rows,
		[]string{"reservoir (paper)", "0.371 s", "18 s"},
		[]string{"fifo (paper)", "0.762 s", "18 s"},
	)
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}

// runTable4 compares the contiguous-arena layout against per-neuron
// allocation — the repository's Transparent Hugepages analog (App. D.1).
// The paper's TLB/page-walk counters become the observable Go
// equivalents: heap object count, allocation count, GC cycles and the
// measured training iteration time.
func runTable4(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}

	type layoutResult struct {
		objects uint64
		allocs  uint64
		bytes   uint64
		gc      uint32
		perIter float64
	}
	run := func(layout core.Layout, padded bool) (layoutResult, error) {
		before := profiler.ReadMemStats()
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.Layout = layout
		cfg.PadRows = padded
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return layoutResult{}, err
		}
		after := profiler.ReadMemStats()
		delta := before.Delta(after)

		tc := w.trainConfig(opts, opts.Threads)
		tc.Iterations = 30
		tc.EvalEvery = 0
		res, err := net.Train(w.ds.Train, w.ds.Test, tc)
		if err != nil {
			return layoutResult{}, err
		}
		end := profiler.ReadMemStats()
		return layoutResult{
			objects: delta.HeapObjects,
			allocs:  delta.TotalAllocs,
			bytes:   delta.HeapBytes,
			gc:      end.GCCycles - before.GCCycles,
			perIter: res.Seconds / float64(res.Iterations),
		}, nil
	}

	opts.logf("table4: per-neuron layout")
	plain, err := run(core.LayoutPerNeuron, false)
	if err != nil {
		return nil, err
	}
	opts.logf("table4: contiguous arena layout")
	packed, err := run(core.LayoutContiguous, true)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table4", Title: "Memory layout counter metrics (hugepage analog)"}
	rep.AddNote("substitution: Transparent Hugepages -> arena slabs; TLB/PTW counters -> allocator object counts (both measure 'how many distinct memory regions back the parameters')")
	rep.AddNote("workload: %s, 30 training iterations, threads=%d", w.ds.Name, opts.Threads)
	tab := Table{
		Title:  "metric comparison",
		Header: []string{"Metric", "Per-neuron (no hugepages)", "Arena (with hugepages)"},
	}
	tab.Rows = [][]string{
		{"heap objects for parameters", fmt.Sprintf("%d", plain.objects), fmt.Sprintf("%d", packed.objects)},
		{"allocations during build", fmt.Sprintf("%d", plain.allocs), fmt.Sprintf("%d", packed.allocs)},
		{"parameter heap bytes", fmt.Sprintf("%d", plain.bytes), fmt.Sprintf("%d", packed.bytes)},
		{"GC cycles (build+30 iters)", fmt.Sprintf("%d", plain.gc), fmt.Sprintf("%d", packed.gc)},
		{"seconds per iteration", fmt.Sprintf("%.4f", plain.perIter), fmt.Sprintf("%.4f", packed.perIter)},
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}
