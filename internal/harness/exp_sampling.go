package harness

import (
	"fmt"
	"time"

	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/rng"
	"repro/internal/sampling"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Time per query for MIPS sampling strategies (Fig. 4 / Fig. 12)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Hard thresholding selection probability curves (Fig. 11)",
		Run:   runFig11,
	})
}

// strategyBench holds a pre-built table set over a neuron population,
// shared by fig4 and table3.
type strategyBench struct {
	dim     int
	neurons int
	fam     lsh.Family
	weights [][]float32
	codes   []uint32 // neuron codes, stride nf
}

// newStrategyBench hashes a random neuron population of the Delicious
// output layer's shape (weight rows over a 128-wide hidden layer).
func newStrategyBench(neurons, k, l int, seed uint64) (*strategyBench, error) {
	const dim = 128
	fam, err := lsh.New(lsh.KindSimhash, lsh.Params{Dim: dim, K: k, L: l, Seed: seed})
	if err != nil {
		return nil, err
	}
	b := &strategyBench{dim: dim, neurons: neurons, fam: fam}
	r := rng.NewStream(seed, 0xf164)
	b.weights = make([][]float32, neurons)
	flat := make([]float32, neurons*dim)
	for j := range b.weights {
		row := flat[j*dim : (j+1)*dim]
		for i := range row {
			row[i] = r.NormFloat32()
		}
		b.weights[j] = row
	}
	nf := fam.NumFuncs()
	b.codes = make([]uint32, neurons*nf)
	parallelChunks(neurons, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			fam.HashDense(b.weights[j], b.codes[j*nf:(j+1)*nf])
		}
	})
	return b, nil
}

// buildTables inserts every neuron under the given policy, returning the
// hash-only and insert-only durations (Table 3's two columns).
func (b *strategyBench) buildTables(k, l int, policy hashtable.Policy, seed uint64, workers int) (*hashtable.Table, time.Duration, error) {
	tbl, err := hashtable.New(hashtable.Config{
		K: k, L: l, CodeBits: b.fam.CodeBits(), Policy: policy, Seed: seed,
	})
	if err != nil {
		return nil, 0, err
	}
	nf := b.fam.NumFuncs()
	start := time.Now()
	tbl.BuildParallel(b.neurons, b.codes, nf, workers)
	return tbl, time.Since(start), nil
}

func runFig4(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	// The paper samples 2000-7000 neurons from the 205,443-neuron
	// Delicious output layer (~1% to ~3.4%); the same fractions apply at
	// every scale.
	neurons := maxI(512, int(205443*sc.DatasetScale))
	k, l := sc.K, sc.L
	opts.logf("fig4: building (K=%d, L=%d) tables over %d neurons", k, l, neurons)
	bench, err := newStrategyBench(neurons, k, l, opts.Seed)
	if err != nil {
		return nil, err
	}
	tbl, _, err := bench.buildTables(k, l, hashtable.PolicyReservoir, opts.Seed, opts.Threads)
	if err != nil {
		return nil, err
	}

	const queries = 64
	qr := rng.NewStream(opts.Seed, 0x9a4)
	nf := bench.fam.NumFuncs()
	qCodes := make([]uint32, queries*nf)
	qVec := make([]float32, bench.dim)
	for q := 0; q < queries; q++ {
		for i := range qVec {
			qVec[i] = qr.NormFloat32()
		}
		bench.fam.HashDense(qVec, qCodes[q*nf:(q+1)*nf])
	}

	fracs := []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.034}
	kinds := []sampling.Kind{sampling.KindVanilla, sampling.KindTopK, sampling.KindHardThreshold}

	rep := &Report{ID: "fig4", Title: "Time per query for MIPS sampling strategies"}
	rep.AddNote("%d neurons, K=%d, L=%d, %d queries per point; times are seconds per query (retrieval only, hashing excluded as a shared cost)", neurons, k, l, queries)
	summary := Table{
		Title:  "seconds per query",
		Header: []string{"#samples", "vanilla", "topk", "hard-threshold"},
	}
	series := make([]Series, len(kinds))
	for i, kind := range kinds {
		series[i] = Series{Name: kind.String(), XLabel: "#samples", YLabel: "seconds"}
	}

	dst := make([]uint32, 0, neurons)
	for _, frac := range fracs {
		beta := maxI(16, int(frac*float64(neurons)))
		row := []string{fmt.Sprintf("%d", beta)}
		for i, kind := range kinds {
			strat, err := sampling.New(sampling.Params{
				Kind: kind, Beta: beta, MinCount: 2, Seed: opts.Seed,
			}, neurons)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for q := 0; q < queries; q++ {
				dst = strat.Sample(dst[:0], tbl, qCodes[q*nf:(q+1)*nf])
			}
			per := time.Since(start).Seconds() / queries
			series[i].X = append(series[i].X, float64(beta))
			series[i].Y = append(series[i].Y, per)
			row = append(row, fmt.Sprintf("%.3g", per))
		}
		summary.Rows = append(summary.Rows, row)
		opts.logf("fig4: beta=%d done", beta)
	}
	rep.Tables = append(rep.Tables, summary)
	rep.Series = append(rep.Series, series...)
	return rep, nil
}

// runFig11 evaluates eqn. 3 exactly as Fig. 11 plots it: selection
// probability vs per-table collision probability p for L=10 tables and
// frequency thresholds m in {1,3,5,7,9}.
func runFig11(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	const l = 10
	rep := &Report{ID: "fig11", Title: "Hard thresholding selection probability (eqn. 3)"}
	rep.AddNote("L=%d tables; x-axis is the per-table collision probability p (K folded in)", l)
	tab := Table{Title: "Pr[selected]", Header: []string{"p", "m=1", "m=3", "m=5", "m=7", "m=9"}}
	ms := []int{1, 3, 5, 7, 9}
	series := make([]Series, len(ms))
	for i, m := range ms {
		series[i] = Series{Name: fmt.Sprintf("m=%d", m), XLabel: "p", YLabel: "Pr"}
	}
	for p := 0.05; p <= 0.951; p += 0.05 {
		row := []string{fmtF(p, 2)}
		for i, m := range ms {
			pr := sampling.SelectionProbability(p, 1, l, m)
			series[i].X = append(series[i].X, p)
			series[i].Y = append(series[i].Y, pr)
			row = append(row, fmtF(pr, 4))
		}
		tab.Rows = append(tab.Rows, row)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Series = append(rep.Series, series...)
	return rep, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
