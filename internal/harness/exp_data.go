package harness

import (
	"fmt"

	"repro/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Statistics of the datasets (Table 1)",
		Run:   runTable1,
	})
}

// runTable1 regenerates the paper's dataset statistics table from the
// synthetic profiles at the chosen scale, next to the published values
// for reference.
func runTable1(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table1", Title: "Statistics of the datasets"}
	rep.AddNote("synthetic datasets generated at scale %g of the published dimensions", sc.DatasetScale)

	t := Table{
		Title: "dataset statistics",
		Header: []string{"Dataset", "Feature Dim", "Feature Sparsity", "Label Dim",
			"Training Size", "Testing Size", "Avg Features", "Avg Labels"},
	}
	paperRows := [][]string{
		{"Delicious-200K (paper)", "782585", "0.038%", "205443", "196606", "100095", "~300", "~75"},
		{"Amazon-670K (paper)", "135909", "0.055%", "670091", "490449", "153025", "~75", "~5"},
	}
	profiles := []dataset.Profile{
		dataset.Delicious200K(sc.DatasetScale, opts.Seed),
		dataset.Amazon670K(sc.DatasetScale, opts.Seed),
	}
	for _, p := range profiles {
		opts.logf("table1: generating %s", p.Name)
		ds, err := dataset.Generate(p)
		if err != nil {
			return nil, err
		}
		if err := ds.Validate(); err != nil {
			return nil, err
		}
		s := ds.Stats()
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.FeatureDim),
			fmt.Sprintf("%.3f%%", s.FeatureSparsity*100),
			fmt.Sprintf("%d", s.LabelDim),
			fmt.Sprintf("%d", s.TrainSize),
			fmt.Sprintf("%d", s.TestSize),
			fmtF(s.AvgFeatures, 1),
			fmtF(s.AvgLabels, 1),
		})
	}
	t.Rows = append(t.Rows, paperRows...)
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}
