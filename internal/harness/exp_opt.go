package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
	"repro/internal/vecmath"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Optimized vs plain SLIDE (Fig. 10: hugepage/SIMD analog)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "abl-strategy",
		Title: "Sampling strategy ablation (App. C.1)",
		Run:   runAblStrategy,
	})
	register(Experiment{
		ID:    "abl-update",
		Title: "Gradient update mode ablation (§3.1 HOGWILD design choice)",
		Run:   runAblUpdate,
	})
	register(Experiment{
		ID:    "abl-hash",
		Title: "Hash family ablation (Simhash / WTA / DWTA / DOPH)",
		Run:   runAblHash,
	})
}

// runFig10 trains plain SLIDE (per-neuron allocation, scalar kernels) and
// optimized SLIDE (arena slabs, cache-line padded rows, unrolled kernels)
// on both workloads. The paper's Hugepages+SIMD optimizations bought
// ~1.3x; the analog here is the same ablation in Go terms.
func runFig10(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig10", Title: "Optimized vs plain SLIDE"}
	rep.AddNote("plain: one heap allocation per neuron + scalar kernels; optimized: contiguous padded arena slabs + 8-way unrolled kernels (DESIGN.md maps these to the paper's Hugepages/SIMD)")
	tab := Table{
		Title:  "training time for the same work",
		Header: []string{"dataset", "variant", "seconds", "sec/iter", "final P@1", "speedup"},
	}

	prevUnrolled := vecmath.Unrolled
	defer func() { vecmath.Unrolled = prevUnrolled }()

	for _, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		run := func(optimized bool) (*core.TrainResult, error) {
			vecmath.Unrolled = optimized
			cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
			if optimized {
				cfg.Layout = core.LayoutContiguous
				cfg.PadRows = true
			} else {
				cfg.Layout = core.LayoutPerNeuron
			}
			net, err := core.NewNetwork(cfg)
			if err != nil {
				return nil, err
			}
			return net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		}
		opts.logf("fig10: %s plain", w.ds.Name)
		plain, err := run(false)
		if err != nil {
			return nil, err
		}
		opts.logf("fig10: %s optimized", w.ds.Name)
		fast, err := run(true)
		if err != nil {
			return nil, err
		}
		pt, _ := curveSeries(w.ds.Name+" slide-plain", plain.Curve.Points)
		ft, _ := curveSeries(w.ds.Name+" slide-optimized", fast.Curve.Points)
		rep.Series = append(rep.Series, pt, ft)
		tab.Rows = append(tab.Rows,
			[]string{w.ds.Name, "plain", fmtF(plain.Seconds, 2),
				fmtF(plain.Seconds/float64(maxI(1, int(plain.Iterations))), 4), fmtF(plain.FinalAcc, 3), "1.00x"},
			[]string{w.ds.Name, "optimized", fmtF(fast.Seconds, 2),
				fmtF(fast.Seconds/float64(maxI(1, int(fast.Iterations))), 4), fmtF(fast.FinalAcc, 3),
				fmtF(plain.Seconds/fast.Seconds, 2) + "x"},
		)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}

func runAblStrategy(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "abl-strategy", Title: "Sampling strategy quality and cost"}
	tab := Table{
		Title:  "strategy comparison",
		Header: []string{"strategy", "final P@1", "best P@1", "seconds", "mean active"},
	}
	for _, kind := range []sampling.Kind{sampling.KindVanilla, sampling.KindTopK, sampling.KindHardThreshold} {
		opts.logf("abl-strategy: %s", kind)
		net, err := core.NewNetwork(w.slideConfig(opts, kind, hashtable.PolicyReservoir))
		if err != nil {
			return nil, err
		}
		res, err := net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		if err != nil {
			return nil, err
		}
		_, iterS := curveSeries(kind.String(), res.Curve.Points)
		rep.Series = append(rep.Series, iterS)
		tab.Rows = append(tab.Rows, []string{
			kind.String(), fmtF(res.FinalAcc, 3), fmtF(res.Curve.Best(), 3),
			fmtF(res.Seconds, 2), fmtF(res.MeanActive[1], 0),
		})
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("App. C.1: vanilla and topk converge nearly identically per iteration; vanilla is the cheapest per query")
	return rep, nil
}

func runAblUpdate(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := deliciousWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "abl-update", Title: "Gradient update mode ablation"}
	tab := Table{
		Title:  "update mode comparison",
		Header: []string{"mode", "final P@1", "seconds", "sec/iter"},
	}
	for _, mode := range []optim.UpdateMode{optim.ModeHogwild, optim.ModeAtomic, optim.ModeBatchSync} {
		opts.logf("abl-update: %s", mode)
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.UpdateMode = mode
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		res, err := net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			mode.String(), fmtF(res.FinalAcc, 3), fmtF(res.Seconds, 2),
			fmtF(res.Seconds/float64(maxI(1, int(res.Iterations))), 4),
		})
	}
	rep.Tables = append(rep.Tables, tab)
	rep.AddNote("the paper's HOGWILD argument: sparse asynchronous updates rarely conflict, so racy writes match synchronized convergence at lower cost")
	return rep, nil
}

func runAblHash(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := amazonWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "abl-hash", Title: "Hash family ablation on the Amazon profile"}
	tab := Table{
		Title:  "hash family comparison",
		Header: []string{"family", "final P@1", "best P@1", "seconds", "mean active"},
	}
	for _, kind := range []lsh.Kind{lsh.KindSimhash, lsh.KindWTA, lsh.KindDWTA, lsh.KindDOPH} {
		opts.logf("abl-hash: %s", kind)
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		cfg.Layers[1].Hash = kind
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		res, err := net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(kind), fmtF(res.FinalAcc, 3), fmtF(res.Curve.Best(), 3),
			fmtF(res.Seconds, 2), fmtF(res.MeanActive[1], 0),
		})
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}
