package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gpusim"
	"repro/internal/hashtable"
	"repro/internal/metrics"
	"repro/internal/optim"
	"repro/internal/sampling"
	"repro/internal/samsoftmax"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "SLIDE vs TF-GPU vs TF-CPU, time and iteration wise (Fig. 5)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "SLIDE vs static sampled softmax (Fig. 7)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Effect of batch size on SLIDE vs TF-GPU vs sampled softmax (Fig. 8)",
		Run:   runFig8,
	})
}

// trainedPair holds the three Fig. 5 systems on one workload.
type trainedPair struct {
	slide *core.TrainResult
	cpu   *dense.TrainResult
	gpu   *metrics.Curve
	model gpusim.Model
}

// trainTriplet trains SLIDE and the dense baseline on a workload and
// derives the simulated TF-GPU curve from the dense run.
func trainTriplet(opts Options, w *workload, batchOverride int) (*trainedPair, error) {
	batch := w.batch
	if batchOverride > 0 {
		batch = batchOverride
	}

	cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
	net, err := core.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	tc := w.trainConfig(opts, opts.Threads)
	tc.BatchSize = batch
	opts.logf("training SLIDE on %s (batch=%d, beta=%d)", w.ds.Name, batch, w.beta)
	sres, err := net.Train(w.ds.Train, w.ds.Test, tc)
	if err != nil {
		return nil, err
	}
	opts.logf("SLIDE: P@1=%.3f in %.1fs (%d iters)", sres.FinalAcc, sres.Seconds, sres.Iterations)

	dnet, err := dense.New(dense.Config{
		InputDim: w.ds.InputDim,
		Hidden:   []int{128},
		Classes:  w.ds.NumClasses,
		Seed:     opts.Seed,
		Adam:     optim.NewAdam(w.sc.LR),
	})
	if err != nil {
		return nil, err
	}
	dtc := dense.TrainConfig{
		BatchSize:   batch,
		Epochs:      w.sc.Epochs,
		Threads:     opts.Threads,
		EvalEvery:   w.sc.EvalEvery,
		EvalSamples: w.sc.EvalSamples,
		Seed:        opts.Seed,
	}
	opts.logf("training dense baseline (TF-CPU analog) on %s", w.ds.Name)
	dres, err := dnet.Train(w.ds.Train, w.ds.Test, dtc)
	if err != nil {
		return nil, err
	}
	opts.logf("dense: P@1=%.3f in %.1fs (%d iters)", dres.FinalAcc, dres.Seconds, dres.Iterations)

	model := gpusim.V100()
	gpu := model.Retime(&dres.Curve, dres.FLOPsPerIter)
	return &trainedPair{slide: sres, cpu: dres, gpu: gpu, model: model}, nil
}

// appendTriplet adds the three systems' time- and iteration-series to the
// report, prefixed by the workload name.
func appendTriplet(rep *Report, prefix string, tp *trainedPair) {
	st, si := curveSeries(prefix+" slide-cpu", tp.slide.Curve.Points)
	ct, ci := curveSeries(prefix+" tf-cpu", tp.cpu.Curve.Points)
	gt, gi := curveSeries(prefix+" tf-gpu-sim", tp.gpu.Points)
	rep.Series = append(rep.Series, st, ct, gt, si, ci, gi)
}

func timeOrDash(t float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmtF(t, 2) + "s"
}

func ratioOrDash(num, den float64, ok bool) string {
	if !ok || den <= 0 {
		return "-"
	}
	return fmtF(num/den, 2) + "x"
}

func runFig5(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig5", Title: "SLIDE vs TF-GPU vs TF-CPU"}

	workloads := []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload}
	summary := Table{
		Title: "time to 95% of best common accuracy",
		Header: []string{"dataset", "target P@1", "slide-cpu", "tf-cpu", "tf-gpu-sim",
			"cpu/slide speedup", "gpu/slide speedup"},
	}
	for _, mk := range workloads {
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		tp, err := trainTriplet(opts, w, 0)
		if err != nil {
			return nil, err
		}
		appendTriplet(rep, w.ds.Name, tp)
		target := 0.95 * minF64(tp.slide.Curve.Best(), tp.cpu.Curve.Best())
		ts, okS := tp.slide.Curve.TimeToValue(target)
		tc, okC := tp.cpu.Curve.TimeToValue(target)
		tg, okG := tp.gpu.TimeToValue(target)
		summary.Rows = append(summary.Rows, []string{
			w.ds.Name, fmtF(target, 3),
			timeOrDash(ts, okS), timeOrDash(tc, okC), timeOrDash(tg, okG),
			ratioOrDash(tc, ts, okC && okS), ratioOrDash(tg, ts, okG && okS),
		})
		rep.AddNote("%s: SLIDE used %.0f mean active output neurons of %d (%.2f%%); paper reports ~0.5%%",
			w.ds.Name, tp.slide.MeanActive[1], w.ds.NumClasses,
			100*tp.slide.MeanActive[1]/float64(w.ds.NumClasses))
	}
	rep.AddNote("TF-GPU timeline simulated by %s (see DESIGN.md)", gpusim.V100())
	rep.Tables = append(rep.Tables, summary)
	return rep, nil
}

func runFig7(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig7", Title: "SLIDE vs static sampled softmax"}
	summary := Table{
		Title:  "final accuracy",
		Header: []string{"dataset", "system", "samples per example", "final P@1", "best P@1", "seconds"},
	}

	for _, mk := range []func(Options, ScaleSpec) (*workload, error){deliciousWorkload, amazonWorkload} {
		w, err := mk(opts, sc)
		if err != nil {
			return nil, err
		}
		cfg := w.slideConfig(opts, sampling.KindVanilla, hashtable.PolicyReservoir)
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		opts.logf("fig7: training SLIDE on %s", w.ds.Name)
		sres, err := net.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
		if err != nil {
			return nil, err
		}
		st, si := curveSeries(w.ds.Name+" slide-cpu", sres.Curve.Points)
		rep.Series = append(rep.Series, st, si)
		summary.Rows = append(summary.Rows, []string{
			w.ds.Name, "slide", fmt.Sprintf("%.0f (adaptive)", sres.MeanActive[1]),
			fmtF(sres.FinalAcc, 3), fmtF(sres.Curve.Best(), 3), fmtF(sres.Seconds, 1),
		})

		// The paper observes sampled softmax needs ~20% of classes for
		// decent accuracy while SLIDE's adaptive set is ~0.5%; run both
		// a matched budget and the 20% budget.
		budgets := []int{w.beta, maxI(1, w.ds.NumClasses/5)}
		for _, samples := range budgets {
			ssm, err := samsoftmax.New(samsoftmax.Config{
				InputDim: w.ds.InputDim,
				Hidden:   []int{128},
				Classes:  w.ds.NumClasses,
				Samples:  samples,
				Seed:     opts.Seed,
				Adam:     optim.NewAdam(w.sc.LR),
			})
			if err != nil {
				return nil, err
			}
			opts.logf("fig7: training sampled softmax on %s (%d samples)", w.ds.Name, samples)
			r, err := ssm.Train(w.ds.Train, w.ds.Test, w.trainConfig(opts, opts.Threads))
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("%s ssm-%d", w.ds.Name, samples)
			t, i := curveSeries(name, r.Curve.Points)
			rep.Series = append(rep.Series, t, i)
			summary.Rows = append(summary.Rows, []string{
				w.ds.Name, "sampled-softmax", fmt.Sprintf("%d (static)", samples),
				fmtF(r.FinalAcc, 3), fmtF(r.Curve.Best(), 3), fmtF(r.Seconds, 1),
			})
		}
	}
	rep.Tables = append(rep.Tables, summary)
	rep.AddNote("static sampling draws a fresh uniform candidate set per example; SLIDE's candidates adapt to the input via LSH (§5.1)")
	return rep, nil
}

func runFig8(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc, err := ScaleByName(opts.Scale)
	if err != nil {
		return nil, err
	}
	w, err := amazonWorkload(opts, sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig8", Title: "Effect of batch size (Amazon-670K profile)"}
	summary := Table{
		Title:  "final accuracy and training seconds by batch size",
		Header: []string{"batch", "system", "final P@1", "seconds", "sec/iter"},
	}
	for _, batch := range []int{64, 128, 256} {
		opts.logf("fig8: batch=%d", batch)
		tp, err := trainTriplet(opts, w, batch)
		if err != nil {
			return nil, err
		}
		prefix := fmt.Sprintf("batch%d", batch)
		st, _ := curveSeries(prefix+" slide-cpu", tp.slide.Curve.Points)
		gt, _ := curveSeries(prefix+" tf-gpu-sim", tp.gpu.Points)
		rep.Series = append(rep.Series, st, gt)
		summary.Rows = append(summary.Rows,
			[]string{fmt.Sprintf("%d", batch), "slide-cpu", fmtF(tp.slide.FinalAcc, 3),
				fmtF(tp.slide.Seconds, 1), fmtF(tp.slide.Seconds/float64(maxI(1, int(tp.slide.Iterations))), 4)},
			[]string{fmt.Sprintf("%d", batch), "tf-cpu", fmtF(tp.cpu.FinalAcc, 3),
				fmtF(tp.cpu.Seconds, 1), fmtF(tp.cpu.Seconds/float64(maxI(1, int(tp.cpu.Iterations))), 4)},
			[]string{fmt.Sprintf("%d", batch), "tf-gpu-sim", fmtF(tp.cpu.FinalAcc, 3),
				fmtF(tp.gpu.Last().Seconds, 1), fmtF(tp.model.SecondsPerIteration(tp.cpu.FLOPsPerIter), 4)},
		)
	}
	rep.Tables = append(rep.Tables, summary)
	return rep, nil
}

func minF64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
