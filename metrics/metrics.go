// Package metrics is the public surface of the SLIDE evaluation
// substrate: precision@k over sparse top-k predictions, and the
// accuracy-vs-time curves the paper's convergence figures are built from.
//
// It re-exports repro/internal/metrics so examples, binaries and external
// consumers never import internal packages directly.
package metrics

import (
	"repro/internal/metrics"
)

// Point is one evaluation of a training run: iterations, seconds, metric
// value and mean loss since the previous point.
type Point = metrics.Point

// Curve is a named metric trajectory.
type Curve = metrics.Curve

// PrecisionAt1 reports whether the top-scored prediction is a true label.
func PrecisionAt1(scores []float32, ids []int32, labels []int32) float64 {
	return metrics.PrecisionAt1(scores, ids, labels)
}

// PrecisionAtK reports the fraction of the top-k predictions that are
// true labels.
func PrecisionAtK(scores []float32, ids []int32, labels []int32, k int) float64 {
	return metrics.PrecisionAtK(scores, ids, labels, k)
}
