// Package baselines is the public surface of the comparison systems the
// paper measures SLIDE against: the dense full-softmax CPU trainer (the
// TF-CPU analog), the simulated V100 GPU timeline, and TensorFlow-style
// static sampled softmax (§5.1 / Fig. 7).
//
// It re-exports repro/internal/{dense,gpusim,samsoftmax} so examples,
// binaries and external consumers never import internal packages
// directly.
package baselines

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dense"
	"repro/internal/gpusim"
	"repro/internal/samsoftmax"
)

// DenseNetwork is the dense full-softmax baseline network.
type DenseNetwork = dense.Network

// DenseConfig configures the dense baseline.
type DenseConfig = dense.Config

// DenseTrainConfig parameterizes dense baseline training.
type DenseTrainConfig = dense.TrainConfig

// DenseTrainResult reports a dense baseline training run.
type DenseTrainResult = dense.TrainResult

// NewDense constructs an initialized dense full-softmax network.
func NewDense(cfg DenseConfig) (*DenseNetwork, error) { return dense.New(cfg) }

// GPUModel is a simulated accelerator roofline used to retime dense
// training curves onto GPU wall-clock (the paper's V100 comparisons).
type GPUModel = gpusim.Model

// V100 returns the simulated NVIDIA V100 model.
func V100() GPUModel { return gpusim.V100() }

// SampledSoftmaxConfig configures the static uniform sampled-softmax
// baseline.
type SampledSoftmaxConfig = samsoftmax.Config

// NewSampledSoftmax constructs the sampled-softmax baseline as a SLIDE
// network with a static uniform candidate sampler.
func NewSampledSoftmax(cfg SampledSoftmaxConfig) (*core.Network, error) {
	return samsoftmax.New(cfg)
}

// TrainSampledSoftmax trains the sampled-softmax baseline.
func TrainSampledSoftmax(cfg SampledSoftmaxConfig, train, test []dataset.Example, tc core.TrainConfig) (*core.TrainResult, error) {
	return samsoftmax.Train(cfg, train, test, tc)
}
