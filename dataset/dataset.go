// Package dataset is the public surface of the SLIDE data substrate:
// synthetic extreme-classification profiles mirroring the paper's
// Delicious-200K and Amazon-670K workloads (Table 1), and readers/writers
// for the Extreme Classification Repository text format.
//
// It re-exports repro/internal/dataset so examples, binaries and external
// consumers never import internal packages directly.
package dataset

import (
	"io"

	"repro/internal/dataset"
)

// Example is one multi-label classification instance: a sparse feature
// vector plus its sorted true label ids.
type Example = dataset.Example

// Dataset is a named train/test split over a fixed feature and label
// space.
type Dataset = dataset.Dataset

// Stats reports a dataset's Table 1 statistics.
type Stats = dataset.Stats

// Profile parameterizes a synthetic extreme-classification generator.
type Profile = dataset.Profile

// Delicious200K returns the synthetic profile mirroring Delicious-200K at
// the given scale in (0, 1].
func Delicious200K(scale float64, seed uint64) Profile {
	return dataset.Delicious200K(scale, seed)
}

// Amazon670K returns the synthetic profile mirroring Amazon-670K at the
// given scale in (0, 1].
func Amazon670K(scale float64, seed uint64) Profile {
	return dataset.Amazon670K(scale, seed)
}

// Generate materializes a profile into a train/test split.
func Generate(p Profile) (*Dataset, error) { return dataset.Generate(p) }

// ReadXC parses examples in the Extreme Classification Repository format.
func ReadXC(r io.Reader) (examples []Example, numFeatures, numLabels int, err error) {
	return dataset.ReadXC(r)
}

// WriteXC writes examples in the Extreme Classification Repository
// format.
func WriteXC(w io.Writer, examples []Example, numFeatures, numLabels int) error {
	return dataset.WriteXC(w, examples, numFeatures, numLabels)
}

// LoadXCFile loads an XC-format file as a dataset named name (the test
// split is left empty).
func LoadXCFile(name, path string) (*Dataset, error) { return dataset.LoadXCFile(name, path) }
