// Package harness is the public surface of the experiment harness that
// reproduces the paper's tables and figures (Fig. 4-11, Tables 1-4).
//
// It re-exports repro/internal/harness so binaries and external
// consumers never import internal packages directly.
package harness

import (
	"io"

	"repro/internal/harness"
)

// Options configures an experiment run (scale, seed, threads, output).
type Options = harness.Options

// Experiment is one registered paper experiment.
type Experiment = harness.Experiment

// Report is an experiment's tabular output.
type Report = harness.Report

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment { return harness.Experiments() }

// Get looks an experiment up by id.
func Get(id string) (Experiment, bool) { return harness.Get(id) }

// RunAll runs every experiment, streaming text reports to w.
func RunAll(opts Options, w io.Writer) error { return harness.RunAll(opts, w) }
